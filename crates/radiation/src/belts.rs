//! Parametric Van Allen belt flux profiles.
//!
//! Each trapped population is a Gaussian profile in L (where the belt
//! lives) combined with a mirror-point distribution factor in the local
//! field strength `B`:
//!
//! ```text
//! flux(L, B) = J_eq(L) · [ (B_c(L) − B) / (B_c(L) − B_eq(L)) ]^p
//! ```
//!
//! where `B_eq(L)` is the shell's equatorial field and `B_c(L)` the
//! *atmospheric cutoff* — the field at which the shell's field line
//! reaches ~100 km altitude, below which mirror points sit in the
//! atmosphere and particles are lost. Flux therefore vanishes as the local
//! field approaches the cutoff and is maximal where the field is weakest
//! on the shell.
//!
//! This is the mechanism that makes the **South Atlantic Anomaly** the
//! only low-latitude place where the inner belt touches LEO: the offset
//! dipole makes `B` anomalously low there, so `(B_c − B)` is large while
//! everywhere else at the same altitude the local field sits near the
//! cutoff. The same formula puts the outer-electron "horns" at 55–70°
//! magnetic latitude. IRENE/AE9/AP9 refine exactly this picture with
//! empirical maps; the paper's figures depend only on the structure
//! reproduced here.

use crate::lshell::MagneticCoords;
use ssplane_astro::constants::EARTH_RADIUS_KM;

/// Altitude \[km\] of the atmospheric loss boundary.
const LOSS_ALTITUDE_KM: f64 = 100.0;

/// One trapped-particle population.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BeltComponent {
    /// L-shell of the belt's flux peak.
    pub peak_l: f64,
    /// Gaussian width of the belt in L.
    pub sigma_l: f64,
    /// Omnidirectional flux at the belt peak, magnetic equator
    /// \[#/cm²/s/MeV\].
    pub equatorial_flux: f64,
    /// Exponent `p` of the mirror-point distribution: larger = flux more
    /// tightly confined near the shell's weak-field region.
    pub mirror_exponent: f64,
}

/// Atmospheric-cutoff field \[T\] on shell `l`, for a dipole with surface
/// equatorial field `b0`: the dipole field where the line crosses the loss
/// altitude, `B_c = b0 · √(4 − 3·rₐ/L) / rₐ³` with `rₐ` the loss radius in
/// Earth radii. For shells entirely below the loss altitude, returns the
/// equatorial field (flux will be zero).
pub fn cutoff_field(b0: f64, l: f64) -> f64 {
    let r_a = 1.0 + LOSS_ALTITUDE_KM / EARTH_RADIUS_KM;
    if l <= r_a {
        return b0 / l.powi(3);
    }
    let ratio = r_a / l;
    b0 * (4.0 - 3.0 * ratio).sqrt() / (r_a * r_a * r_a)
}

impl BeltComponent {
    /// Flux \[#/cm²/s/MeV\] of this component at the given magnetic
    /// coordinates (before solar-activity scaling).
    pub fn flux(&self, coords: &MagneticCoords) -> f64 {
        let dl = (coords.l_shell - self.peak_l) / self.sigma_l;
        if dl.abs() > 6.0 {
            return 0.0;
        }
        let shell_profile = (-0.5 * dl * dl).exp();

        // Reconstruct the dipole surface field from the shell's equatorial
        // field (B_eq = b0 / L³).
        let b0 = coords.b_equatorial * coords.l_shell.powi(3);
        let b_c = cutoff_field(b0, coords.l_shell);
        let denom = b_c - coords.b_equatorial;
        if denom <= 0.0 {
            return 0.0;
        }
        let x = ((b_c - coords.b_local) / denom).clamp(0.0, 1.0);
        self.equatorial_flux * shell_profile * x.powf(self.mirror_exponent)
    }
}

/// The complete trapped-particle belt system.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BeltModel {
    /// Inner-belt protons (tens-of-MeV population; SAA hazard).
    pub inner_protons: BeltComponent,
    /// Inner-belt electrons (SAA hazard).
    pub inner_electrons: BeltComponent,
    /// Outer-belt electrons (high-latitude horn hazard).
    pub outer_electrons: BeltComponent,
}

impl Default for BeltModel {
    fn default() -> Self {
        // Amplitudes calibrated so 560 km daily fluences land in the
        // decades of the paper's Fig. 7 (electrons ~10⁹–10¹⁰, protons
        // ~10⁷ #/cm²/MeV/day); structure parameters from standard belt
        // climatology. See EXPERIMENTS.md for the calibration record.
        BeltModel {
            inner_protons: BeltComponent {
                peak_l: 1.45,
                sigma_l: 0.25,
                equatorial_flux: 8.0e3,
                mirror_exponent: 5.0,
            },
            inner_electrons: BeltComponent {
                peak_l: 1.7,
                sigma_l: 0.45,
                equatorial_flux: 1.8e6,
                mirror_exponent: 6.0,
            },
            outer_electrons: BeltComponent {
                peak_l: 4.2,
                sigma_l: 1.1,
                equatorial_flux: 3.0e6,
                mirror_exponent: 1.2,
            },
        }
    }
}

impl BeltModel {
    /// Total electron flux (inner + outer populations) at the given
    /// magnetic coordinates \[#/cm²/s/MeV\].
    pub fn electron_flux(&self, coords: &MagneticCoords) -> f64 {
        self.inner_electrons.flux(coords) + self.outer_electrons.flux(coords)
    }

    /// Proton flux at the given magnetic coordinates \[#/cm²/s/MeV\].
    pub fn proton_flux(&self, coords: &MagneticCoords) -> f64 {
        self.inner_protons.flux(coords)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dipole::B0_SURFACE_T;

    fn coords(l: f64, b_over_b0: f64) -> MagneticCoords {
        let b_equatorial = B0_SURFACE_T / l.powi(3);
        MagneticCoords {
            l_shell: l,
            b_local: b_equatorial * b_over_b0,
            b_equatorial,
            magnetic_latitude: 0.0,
        }
    }

    #[test]
    fn peak_flux_at_peak_l_equator() {
        let m = BeltModel::default();
        let peak_l = m.outer_electrons.peak_l;
        let at_peak = m.outer_electrons.flux(&coords(peak_l, 1.0));
        assert!((at_peak - m.outer_electrons.equatorial_flux).abs() < 1e-6);
        // Off-peak in L decays.
        assert!(m.outer_electrons.flux(&coords(peak_l - 1.5, 1.0)) < at_peak);
        assert!(m.outer_electrons.flux(&coords(peak_l + 1.5, 1.0)) < at_peak);
        // Far tail is cut to zero.
        assert_eq!(m.outer_electrons.flux(&coords(20.0, 1.0)), 0.0);
    }

    #[test]
    fn flux_vanishes_at_cutoff() {
        let m = BeltModel::default();
        let l = 1.45;
        let b_c = cutoff_field(B0_SURFACE_T, l);
        let b_eq = B0_SURFACE_T / l.powi(3);
        // Exactly at the cutoff field, flux = 0.
        let at_cutoff = m.inner_protons.flux(&MagneticCoords {
            l_shell: l,
            b_local: b_c,
            b_equatorial: b_eq,
            magnetic_latitude: 0.0,
        });
        assert_eq!(at_cutoff, 0.0);
        // Just below the cutoff, small but positive.
        let near = m.inner_protons.flux(&MagneticCoords {
            l_shell: l,
            b_local: 0.99 * b_c,
            b_equatorial: b_eq,
            magnetic_latitude: 0.0,
        });
        assert!(near > 0.0 && near < 0.01 * m.inner_protons.equatorial_flux);
    }

    #[test]
    fn flux_decreases_with_local_field() {
        let m = BeltModel::default();
        let mut prev = f64::INFINITY;
        for b_ratio in [1.0, 1.5, 2.0, 3.0] {
            let f = m.electron_flux(&coords(1.6, b_ratio));
            assert!(f <= prev, "flux must fall as B grows");
            prev = f;
        }
    }

    #[test]
    fn cutoff_field_sane() {
        // For high shells the cutoff approaches √4·b0/rₐ³ ≈ 1.9·b0; at
        // L = 6 the line crosses the loss sphere at cos²λ = rₐ/6, giving
        // ~1.78·b0.
        let hi = cutoff_field(B0_SURFACE_T, 6.0);
        assert!((hi / B0_SURFACE_T - 1.78).abs() < 0.1, "hi/b0 = {}", hi / B0_SURFACE_T);
        // Cutoff exceeds the equatorial field for all L > rₐ.
        for l in [1.1, 1.5, 2.0, 5.0] {
            assert!(cutoff_field(B0_SURFACE_T, l) > B0_SURFACE_T / l.powi(3));
        }
        // Degenerate shell below the loss altitude.
        let low = cutoff_field(B0_SURFACE_T, 1.0);
        assert_eq!(low, B0_SURFACE_T);
    }

    #[test]
    fn species_separation() {
        let m = BeltModel::default();
        // Protons live only in the inner zone.
        assert_eq!(m.proton_flux(&coords(4.9, 1.0)), 0.0);
        assert!(m.proton_flux(&coords(1.45, 1.0)) > 0.0);
        // Electrons exist in both zones.
        assert!(m.electron_flux(&coords(1.6, 1.0)) > 0.0);
        assert!(m.electron_flux(&coords(4.9, 1.0)) > 0.0);
    }
}
