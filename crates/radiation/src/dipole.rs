//! Offset tilted dipole model of the geomagnetic field.
//!
//! The Earth's field at LEO is ~90% dipolar, but two departures from a
//! centered aligned dipole dominate the radiation geography the paper
//! cares about:
//!
//! * the **tilt** (~11°) between the dipole axis and the rotation axis,
//!   which swings the radiation-belt footprints in longitude, and
//! * the **offset** (~500 km) of the dipole center toward the western
//!   Pacific, which weakens the field over the South Atlantic and lets the
//!   inner belt sag to LEO altitudes there — the **South Atlantic
//!   Anomaly**.
//!
//! Both are modeled here with the classic eccentric-dipole parameters.

use ssplane_astro::constants::EARTH_RADIUS_KM;
use ssplane_astro::geo::GeoPoint;
use ssplane_astro::linalg::Vec3;

/// Surface equatorial field strength of the dipole \[Tesla\] (0.301 G,
/// IGRF-2015 dipole moment).
pub const B0_SURFACE_T: f64 = 3.012e-5;

/// Geodetic position of the geomagnetic north pole used for the tilt
/// (IGRF-era value: 80.4°N, 287.4°E).
pub const GEOMAGNETIC_NORTH_POLE: (f64, f64) = (80.4, -72.6);

/// Eccentric-dipole center offset from the Earth center \[km\] in ECEF,
/// ~500 km toward (≈22°N, 141°E) — western Pacific.
pub const DIPOLE_OFFSET_KM: Vec3 = Vec3 { x: -385.0, y: 285.0, z: 170.0 };

/// The offset tilted dipole field model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DipoleField {
    /// Unit vector of the dipole moment in ECEF. Points toward the
    /// *southern* magnetic hemisphere (physical convention: the field
    /// emerges near the geographic south pole).
    pub moment_dir: Vec3,
    /// Dipole center offset from the geocenter \[km\], ECEF.
    pub offset_km: Vec3,
    /// Surface equatorial field strength \[T\].
    pub b0: f64,
}

impl Default for DipoleField {
    fn default() -> Self {
        let (lat, lon) = GEOMAGNETIC_NORTH_POLE;
        let north = GeoPoint::from_degrees(lat, lon).to_unit_vector();
        DipoleField { moment_dir: -north, offset_km: DIPOLE_OFFSET_KM, b0: B0_SURFACE_T }
    }
}

impl DipoleField {
    /// A centered, axis-aligned dipole (no tilt, no offset) — useful for
    /// validating against closed-form dipole results in tests.
    pub fn centered_aligned() -> Self {
        DipoleField { moment_dir: -Vec3::Z, offset_km: Vec3::ZERO, b0: B0_SURFACE_T }
    }

    /// Magnetic field vector \[T\] at an ECEF position \[km\].
    ///
    /// Dipole formula `B = (B0·Re³/r³)·(3(m̂·r̂)r̂ − m̂)` with `r` measured
    /// from the (offset) dipole center.
    pub fn field(&self, ecef_km: Vec3) -> Vec3 {
        let rel = ecef_km - self.offset_km;
        let r = rel.norm();
        let r_hat = rel / r;
        let k = self.b0 * (EARTH_RADIUS_KM / r).powi(3);
        (r_hat * (3.0 * self.moment_dir.dot(r_hat)) - self.moment_dir) * k
    }

    /// Field magnitude \[T\] at an ECEF position.
    pub fn field_magnitude(&self, ecef_km: Vec3) -> f64 {
        self.field(ecef_km).norm()
    }

    /// Magnetic latitude \[rad\] of an ECEF position: the latitude in the
    /// dipole-centered frame whose pole is the (northern) dipole axis.
    pub fn magnetic_latitude(&self, ecef_km: Vec3) -> f64 {
        let rel = ecef_km - self.offset_km;
        let r_hat = match rel.normalized() {
            Some(u) => u,
            None => return 0.0,
        };
        // moment_dir points south; magnetic latitude is measured toward
        // the northern magnetic pole.
        (-(r_hat.dot(self.moment_dir))).clamp(-1.0, 1.0).asin()
    }

    /// Radial distance \[km\] from the dipole center.
    pub fn dipole_radius(&self, ecef_km: Vec3) -> f64 {
        (ecef_km - self.offset_km).norm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn centered_dipole_equator_and_pole_magnitudes() {
        let d = DipoleField::centered_aligned();
        // Equator at surface: B = B0.
        let b_eq = d.field_magnitude(Vec3::new(EARTH_RADIUS_KM, 0.0, 0.0));
        assert!((b_eq - B0_SURFACE_T).abs() / B0_SURFACE_T < 1e-12);
        // Pole at surface: B = 2·B0.
        let b_pole = d.field_magnitude(Vec3::new(0.0, 0.0, EARTH_RADIUS_KM));
        assert!((b_pole - 2.0 * B0_SURFACE_T).abs() / B0_SURFACE_T < 1e-12);
    }

    #[test]
    fn field_decays_cubically() {
        let d = DipoleField::centered_aligned();
        let b1 = d.field_magnitude(Vec3::new(EARTH_RADIUS_KM, 0.0, 0.0));
        let b2 = d.field_magnitude(Vec3::new(2.0 * EARTH_RADIUS_KM, 0.0, 0.0));
        assert!((b1 / b2 - 8.0).abs() < 1e-9);
    }

    #[test]
    fn field_points_north_at_equator() {
        // At the magnetic equator the field points toward magnetic north
        // (horizontal, opposite the moment direction).
        let d = DipoleField::centered_aligned();
        let b = d.field(Vec3::new(EARTH_RADIUS_KM, 0.0, 0.0));
        assert!(b.z > 0.0, "northward (+z for aligned dipole): {b:?}");
        assert!(b.x.abs() < 1e-20 && b.y.abs() < 1e-20);
    }

    #[test]
    fn saa_field_weaker_than_antipode() {
        // The hallmark of the offset dipole: at 560 km over the South
        // Atlantic (-25°, -45°) the field is markedly weaker than over the
        // western Pacific antipode (+25°, 135°).
        let d = DipoleField::default();
        let saa = GeoPoint::from_degrees(-25.0, -45.0).to_unit_vector() * (EARTH_RADIUS_KM + 560.0);
        let pac = GeoPoint::from_degrees(25.0, 135.0).to_unit_vector() * (EARTH_RADIUS_KM + 560.0);
        let b_saa = d.field_magnitude(saa);
        let b_pac = d.field_magnitude(pac);
        assert!(b_saa < 0.75 * b_pac, "B_SAA = {b_saa:e}, B_Pacific = {b_pac:e}");
        // And the global surface-field minimum at that altitude is in the
        // SAA quadrant (southern hemisphere, western longitudes).
        let mut min = (f64::INFINITY, 0.0, 0.0);
        for lat in (-80..=80).step_by(4) {
            for lon in (-180..180).step_by(4) {
                let p = GeoPoint::from_degrees(lat as f64, lon as f64).to_unit_vector()
                    * (EARTH_RADIUS_KM + 560.0);
                let b = d.field_magnitude(p);
                if b < min.0 {
                    min = (b, lat as f64, lon as f64);
                }
            }
        }
        assert!(min.1 < 0.0 && min.2 < 0.0, "field minimum at ({}, {})", min.1, min.2);
    }

    #[test]
    fn magnetic_latitude_poles_and_equator() {
        let d = DipoleField::centered_aligned();
        let up = d.magnetic_latitude(Vec3::new(0.0, 0.0, 7000.0));
        assert!((up - core::f64::consts::FRAC_PI_2).abs() < 1e-9);
        let eq = d.magnetic_latitude(Vec3::new(7000.0, 0.0, 0.0));
        assert!(eq.abs() < 1e-12);
        // Tilted dipole: geographic pole is NOT at magnetic latitude 90°.
        let t = DipoleField::default();
        let gp = t.magnetic_latitude(Vec3::new(0.0, 0.0, 7000.0));
        assert!(gp < 85f64.to_radians() && gp > 70f64.to_radians());
    }

    #[test]
    fn zero_vector_safe() {
        let d = DipoleField::centered_aligned();
        assert_eq!(d.magnetic_latitude(Vec3::ZERO), 0.0);
    }
}
