//! Error types for the radiation substrate.

use core::fmt;

/// Result alias with [`RadiationError`].
pub type Result<T> = core::result::Result<T, RadiationError>;

/// Errors produced by the radiation environment.
#[derive(Debug, Clone, PartialEq)]
pub enum RadiationError {
    /// A query position was inside the Earth (no trapped-particle
    /// environment is defined there).
    BelowSurface {
        /// Geocentric radius of the query \[km\].
        radius_km: f64,
    },
    /// Propagation of the orbit being integrated failed.
    Propagation(ssplane_astro::AstroError),
    /// A configuration parameter was out of domain.
    BadParameter {
        /// Parameter name.
        name: &'static str,
        /// Constraint description.
        constraint: &'static str,
    },
}

impl fmt::Display for RadiationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RadiationError::BelowSurface { radius_km } => {
                write!(f, "query position below the Earth surface (r = {radius_km} km)")
            }
            RadiationError::Propagation(e) => write!(f, "orbit propagation failed: {e}"),
            RadiationError::BadParameter { name, constraint } => {
                write!(f, "bad parameter {name}: must satisfy {constraint}")
            }
        }
    }
}

impl std::error::Error for RadiationError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RadiationError::Propagation(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ssplane_astro::AstroError> for RadiationError {
    fn from(e: ssplane_astro::AstroError) -> Self {
        RadiationError::Propagation(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error;
        let e = RadiationError::BelowSurface { radius_km: 6000.0 };
        assert!(e.to_string().contains("6000"));
        assert!(e.source().is_none());
        let e: RadiationError = ssplane_astro::AstroError::NoSolution { what: "x" }.into();
        assert!(e.source().is_some());
        let e = RadiationError::BadParameter { name: "step", constraint: "> 0" };
        assert!(e.to_string().contains("step"));
    }
}
