//! Fluence accumulation along orbits — the quantities behind the paper's
//! Fig. 7 (fluence vs inclination) and Fig. 10 (median per-satellite
//! fluence of a constellation).

use crate::error::Result;
use crate::flux::RadiationEnvironment;
use ssplane_astro::kepler::OrbitalElements;
use ssplane_astro::propagate::J2Propagator;
use ssplane_astro::time::Epoch;

/// Fluence accumulated over one day \[#/cm²/MeV\] for both species.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DailyFluence {
    /// Electron fluence \[#/cm²/MeV\].
    pub electron: f64,
    /// Proton fluence \[#/cm²/MeV\].
    pub proton: f64,
}

impl DailyFluence {
    /// Component-wise sum.
    pub fn combined(self, other: DailyFluence) -> DailyFluence {
        DailyFluence {
            electron: self.electron + other.electron,
            proton: self.proton + other.proton,
        }
    }

    /// Component-wise scaling.
    pub fn scale(self, k: f64) -> DailyFluence {
        DailyFluence { electron: self.electron * k, proton: self.proton * k }
    }
}

/// Integrates the daily fluence of a satellite on `elements` starting at
/// `epoch`, sampling the environment every `step_s` seconds for 24 hours.
///
/// # Errors
/// Propagates propagation or flux-evaluation failure (invalid elements or
/// an orbit dipping below ~100 km).
pub fn daily_fluence(
    env: &RadiationEnvironment,
    elements: &OrbitalElements,
    epoch: Epoch,
    step_s: f64,
) -> Result<DailyFluence> {
    let step_s = step_s.clamp(1.0, 600.0);
    let prop = J2Propagator::new(epoch, *elements)?;
    let n_steps = (86_400.0 / step_s).round() as usize;
    let mut total = DailyFluence::default();
    for k in 0..n_steps {
        let t = epoch + (k as f64 + 0.5) * step_s;
        let r = prop.position_at(t)?;
        let s = env.flux_eci(r, t)?;
        total.electron += s.electron * step_s;
        total.proton += s.proton * step_s;
    }
    Ok(total)
}

/// The paper's Fig. 7 sweep: daily fluence of circular orbits at
/// `altitude_km` for each inclination \[deg\], starting at `epoch`.
///
/// # Errors
/// Propagates [`daily_fluence`] failure.
pub fn fluence_vs_inclination(
    env: &RadiationEnvironment,
    altitude_km: f64,
    inclinations_deg: &[f64],
    epoch: Epoch,
    step_s: f64,
) -> Result<Vec<(f64, DailyFluence)>> {
    inclinations_deg
        .iter()
        .map(|&inc| {
            let el = OrbitalElements::circular(altitude_km, inc.to_radians(), 0.0, 0.0)?;
            Ok((inc, daily_fluence(env, &el, epoch, step_s)?))
        })
        .collect()
}

/// Daily fluence of every satellite in a constellation.
///
/// # Errors
/// Propagates [`daily_fluence`] failure.
pub fn constellation_fluences(
    env: &RadiationEnvironment,
    satellites: &[OrbitalElements],
    epoch: Epoch,
    step_s: f64,
) -> Result<Vec<DailyFluence>> {
    satellites.iter().map(|el| daily_fluence(env, el, epoch, step_s)).collect()
}

/// Median of a slice of per-satellite fluences, component-wise.
/// Returns zeros for an empty slice.
pub fn median_fluence(fluences: &[DailyFluence]) -> DailyFluence {
    if fluences.is_empty() {
        return DailyFluence::default();
    }
    let median_of = |extract: fn(&DailyFluence) -> f64| -> f64 {
        let mut v: Vec<f64> = fluences.iter().map(extract).collect();
        v.sort_by(|a, b| a.partial_cmp(b).expect("finite fluence"));
        let n = v.len();
        if n % 2 == 1 {
            v[n / 2]
        } else {
            0.5 * (v[n / 2 - 1] + v[n / 2])
        }
    };
    DailyFluence { electron: median_of(|f| f.electron), proton: median_of(|f| f.proton) }
}

/// Mean of a slice of per-satellite fluences (zeros if empty).
pub fn mean_fluence(fluences: &[DailyFluence]) -> DailyFluence {
    if fluences.is_empty() {
        return DailyFluence::default();
    }
    let n = fluences.len() as f64;
    fluences.iter().fold(DailyFluence::default(), |acc, f| acc.combined(*f)).scale(1.0 / n)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env() -> RadiationEnvironment {
        RadiationEnvironment::default()
    }

    fn epoch() -> Epoch {
        // Mid-cycle epoch for stable activity.
        Epoch::from_calendar(2013, 6, 1, 0, 0, 0.0)
    }

    fn circ(alt: f64, inc_deg: f64) -> OrbitalElements {
        OrbitalElements::circular(alt, inc_deg.to_radians(), 0.0, 0.0).unwrap()
    }

    #[test]
    fn fig7_decades_at_560km() {
        // Paper Fig. 7: electron daily fluence of order 10⁹–10¹⁰ and
        // proton fluence of order 10⁷ at 560 km for 60-80° inclinations.
        let f = daily_fluence(&env(), &circ(560.0, 65.0), epoch(), 60.0).unwrap();
        assert!(f.electron > 1e9 && f.electron < 1e11, "electron fluence = {:e}", f.electron);
        assert!(f.proton > 1e6 && f.proton < 1e8, "proton fluence = {:e}", f.proton);
    }

    #[test]
    fn fig7_shape_moderate_inclination_worst_for_electrons() {
        let e = env();
        let t = epoch();
        let sweep =
            fluence_vs_inclination(&e, 560.0, &[30.0, 50.0, 65.0, 80.0, 97.64], t, 60.0).unwrap();
        let by_inc: Vec<f64> = sweep.iter().map(|(_, f)| f.electron).collect();
        // 65° near the worst case.
        let at65 = by_inc[2];
        assert!(at65 > by_inc[0], "65° must beat 30°");
        assert!(at65 > by_inc[4] * 1.1, "65° ({:e}) must exceed SSO ({:e})", at65, by_inc[4]);
        // 50° sits in the dip between the SAA band and the horns.
        assert!(by_inc[1] < 0.9 * at65, "50° = {:e}, 65° = {:e}", by_inc[1], at65);
    }

    #[test]
    fn protons_lower_for_sso_than_mid_inclination() {
        let e = env();
        let t = epoch();
        let mid = daily_fluence(&e, &circ(560.0, 40.0), t, 60.0).unwrap();
        let sso = daily_fluence(&e, &circ(560.0, 97.64), t, 60.0).unwrap();
        assert!(
            sso.proton < mid.proton,
            "SSO proton {:e} must be below 40° proton {:e}",
            sso.proton,
            mid.proton
        );
    }

    #[test]
    fn fluence_scales_with_duration_step_invariance() {
        // Halving the step should not change the daily fluence much.
        let e = env();
        let el = circ(560.0, 65.0);
        let a = daily_fluence(&e, &el, epoch(), 120.0).unwrap();
        let b = daily_fluence(&e, &el, epoch(), 60.0).unwrap();
        assert!((a.electron - b.electron).abs() / b.electron < 0.05);
        assert!((a.proton - b.proton).abs() / b.proton.max(1.0) < 0.15);
    }

    #[test]
    fn median_and_mean_helpers() {
        let fl = vec![
            DailyFluence { electron: 1.0, proton: 10.0 },
            DailyFluence { electron: 3.0, proton: 30.0 },
            DailyFluence { electron: 100.0, proton: 20.0 },
        ];
        let med = median_fluence(&fl);
        assert_eq!(med.electron, 3.0);
        assert_eq!(med.proton, 20.0);
        let mean = mean_fluence(&fl);
        assert!((mean.electron - 104.0 / 3.0).abs() < 1e-12);
        assert_eq!(median_fluence(&[]), DailyFluence::default());
        assert_eq!(mean_fluence(&[]), DailyFluence::default());
        // Even-length median averages the middle two.
        let med2 = median_fluence(&fl[0..2]);
        assert_eq!(med2.electron, 2.0);
    }

    #[test]
    fn constellation_fluences_per_satellite() {
        let e = env();
        let sats = vec![circ(560.0, 65.0), circ(560.0, 97.64)];
        let fl = constellation_fluences(&e, &sats, epoch(), 120.0).unwrap();
        assert_eq!(fl.len(), 2);
        assert!(fl[0].electron > fl[1].electron);
    }

    #[test]
    fn phase_variation_within_plane_is_modest() {
        // Satellites at different phases of the same plane accumulate
        // similar daily fluence (they traverse the same shells).
        let e = env();
        let t = epoch();
        let mut worst_ratio = 1.0f64;
        let base = daily_fluence(&e, &circ(560.0, 65.0), t, 120.0).unwrap().electron;
        for j in 1..4 {
            let mut el = circ(560.0, 65.0);
            el.mean_anomaly = core::f64::consts::TAU * j as f64 / 4.0;
            let f = daily_fluence(&e, &el, t, 120.0).unwrap().electron;
            worst_ratio = worst_ratio.max(f / base).max(base / f);
        }
        assert!(worst_ratio < 1.25, "phase spread ratio = {worst_ratio}");
    }
}
