//! The combined radiation environment: flux by species at any position and
//! epoch, plus gridded flux maps (the paper's Fig. 6).

use crate::belts::BeltModel;
use crate::dipole::DipoleField;
use crate::error::Result;
use crate::lshell::magnetic_coordinates;
use crate::solar::SolarCycle;
use ssplane_astro::constants::EARTH_RADIUS_KM;
use ssplane_astro::frames::eci_to_ecef;
use ssplane_astro::geo::GeoPoint;
use ssplane_astro::linalg::Vec3;
use ssplane_astro::time::Epoch;

/// Trapped-particle species.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Species {
    /// Energetic electrons (inner + outer belt).
    Electron,
    /// Energetic protons (inner belt).
    Proton,
}

/// Flux of both species at one position (computed together because they
/// share the magnetic-coordinate evaluation).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FluxSample {
    /// Electron flux \[#/cm²/s/MeV\].
    pub electron: f64,
    /// Proton flux \[#/cm²/s/MeV\].
    pub proton: f64,
}

/// The full radiation environment model (field + belts + solar driver).
#[derive(Debug, Clone, Copy)]
pub struct RadiationEnvironment {
    /// Geomagnetic field model.
    pub field: DipoleField,
    /// Belt flux profiles.
    pub belts: BeltModel,
    /// Solar-activity driver.
    pub solar: SolarCycle,
}

impl Default for RadiationEnvironment {
    fn default() -> Self {
        RadiationEnvironment {
            field: DipoleField::default(),
            belts: BeltModel::default(),
            solar: SolarCycle::cycle24(),
        }
    }
}

impl RadiationEnvironment {
    /// Smooth atmospheric cutoff: trapped populations are scattered away
    /// below ~200 km; ramps from 0 at 150 km to 1 at 350 km altitude.
    fn atmospheric_factor(geocentric_radius_km: f64) -> f64 {
        let h = geocentric_radius_km - EARTH_RADIUS_KM;
        ((h - 150.0) / 200.0).clamp(0.0, 1.0)
    }

    /// Flux of both species at an **ECEF** position and epoch.
    ///
    /// # Errors
    /// Returns [`crate::RadiationError::BelowSurface`] for positions below
    /// ~100 km altitude.
    pub fn flux_ecef(&self, ecef_km: Vec3, epoch: Epoch) -> Result<FluxSample> {
        let coords = magnetic_coordinates(&self.field, ecef_km)?;
        let atm = Self::atmospheric_factor(ecef_km.norm());
        if atm == 0.0 {
            return Ok(FluxSample::default());
        }
        let inner_e =
            self.belts.inner_electrons.flux(&coords) * self.solar.inner_electron_factor(epoch);
        let outer_e =
            self.belts.outer_electrons.flux(&coords) * self.solar.outer_electron_factor(epoch);
        let p = self.belts.inner_protons.flux(&coords) * self.solar.proton_factor(epoch);
        Ok(FluxSample { electron: (inner_e + outer_e) * atm, proton: p * atm })
    }

    /// Flux of both species at an **ECI** position and epoch.
    ///
    /// # Errors
    /// See [`Self::flux_ecef`].
    pub fn flux_eci(&self, eci_km: Vec3, epoch: Epoch) -> Result<FluxSample> {
        self.flux_ecef(eci_to_ecef(epoch, eci_km), epoch)
    }

    /// Flux of one species at a geographic point and altitude.
    ///
    /// # Errors
    /// See [`Self::flux_ecef`].
    pub fn flux_at(
        &self,
        species: Species,
        point: GeoPoint,
        altitude_km: f64,
        epoch: Epoch,
    ) -> Result<f64> {
        let ecef = point.to_unit_vector() * (EARTH_RADIUS_KM + altitude_km);
        let s = self.flux_ecef(ecef, epoch)?;
        Ok(match species {
            Species::Electron => s.electron,
            Species::Proton => s.proton,
        })
    }

    /// The paper's Fig. 6: maximum flux of `species` at `altitude_km` over
    /// the given sample of `days`, on an `n_lat × n_lon` grid
    /// (south-to-north rows, west-to-east columns).
    ///
    /// # Errors
    /// Propagates flux evaluation failure (only possible for altitudes
    /// below ~100 km).
    pub fn max_flux_map(
        &self,
        species: Species,
        altitude_km: f64,
        days: &[Epoch],
        n_lat: usize,
        n_lon: usize,
    ) -> Result<Vec<Vec<f64>>> {
        let mut map = vec![vec![0.0f64; n_lon]; n_lat];
        for (i, row) in map.iter_mut().enumerate() {
            let lat = -90.0 + 180.0 * (i as f64 + 0.5) / n_lat as f64;
            for (j, cell) in row.iter_mut().enumerate() {
                let lon = -180.0 + 360.0 * (j as f64 + 0.5) / n_lon as f64;
                let p = GeoPoint::from_degrees(lat, lon);
                for &day in days {
                    let f = self.flux_at(species, p, altitude_km, day)?;
                    if f > *cell {
                        *cell = f;
                    }
                }
            }
        }
        Ok(map)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env() -> RadiationEnvironment {
        RadiationEnvironment::default()
    }

    fn quiet_epoch() -> Epoch {
        Epoch::from_calendar(2014, 4, 10, 0, 0, 0.0)
    }

    #[test]
    fn saa_dominates_equatorial_proton_flux() {
        let e = env();
        let t = quiet_epoch();
        let saa =
            e.flux_at(Species::Proton, GeoPoint::from_degrees(-26.0, -50.0), 560.0, t).unwrap();
        let pacific =
            e.flux_at(Species::Proton, GeoPoint::from_degrees(-26.0, 170.0), 560.0, t).unwrap();
        assert!(saa > 10.0 * pacific.max(1e-12), "SAA {saa:e} vs Pacific {pacific:e}");
    }

    #[test]
    fn electron_horns_at_high_latitude() {
        // At 560 km the outer belt reaches down near ±60-66° magnetic
        // latitude; pick a longitude where magnetic ≈ geographic latitude.
        let e = env();
        let t = quiet_epoch();
        let horn =
            e.flux_at(Species::Electron, GeoPoint::from_degrees(60.0, 0.0), 560.0, t).unwrap();
        let mid =
            e.flux_at(Species::Electron, GeoPoint::from_degrees(35.0, 0.0), 560.0, t).unwrap();
        assert!(horn > 5.0 * mid.max(1e-12), "horn {horn:e} vs mid-lat {mid:e}");
    }

    #[test]
    fn atmospheric_cutoff() {
        let e = env();
        let t = quiet_epoch();
        let low = Vec3::new(EARTH_RADIUS_KM + 120.0, 0.0, 0.0);
        let s = e.flux_ecef(low, t).unwrap();
        assert_eq!(s.electron, 0.0);
        assert_eq!(s.proton, 0.0);
        // Below-surface positions rejected.
        assert!(e.flux_ecef(Vec3::new(5000.0, 0.0, 0.0), t).is_err());
    }

    #[test]
    fn eci_and_ecef_agree() {
        let e = env();
        let t = quiet_epoch();
        let ecef =
            GeoPoint::from_degrees(-30.0, -40.0).to_unit_vector() * (EARTH_RADIUS_KM + 560.0);
        let eci = ssplane_astro::frames::ecef_to_eci(t, ecef);
        let a = e.flux_ecef(ecef, t).unwrap();
        let b = e.flux_eci(eci, t).unwrap();
        assert!((a.electron - b.electron).abs() < 1e-9 * a.electron.max(1.0));
        assert!((a.proton - b.proton).abs() < 1e-9 * a.proton.max(1.0));
    }

    #[test]
    fn solar_max_raises_electron_flux() {
        let e = env();
        let quiet = Epoch::from_calendar(2009, 3, 1, 0, 0, 0.0);
        let active = Epoch::from_calendar(2014, 4, 1, 0, 0, 0.0);
        let p = GeoPoint::from_degrees(62.0, 10.0);
        let f_quiet = e.flux_at(Species::Electron, p, 560.0, quiet).unwrap();
        let f_active = e.flux_at(Species::Electron, p, 560.0, active).unwrap();
        assert!(f_active > 1.5 * f_quiet, "active {f_active:e} vs quiet {f_quiet:e}");
    }

    #[test]
    fn max_flux_map_shape_and_structure() {
        let e = env();
        let days = e.solar.sample_days(16, 9);
        let map = e.max_flux_map(Species::Electron, 560.0, &days, 19, 36).unwrap();
        assert_eq!(map.len(), 19);
        assert_eq!(map[0].len(), 36);
        // Both structures of the paper's Fig. 6 must be visible: the SAA
        // (brightest, dominating the equatorial rows) and the outer-belt
        // horn bands at high latitude (same order of magnitude).
        let row_max = |i: usize| map[i].iter().cloned().fold(0.0, f64::max);
        let equator = row_max(9);
        let horn_n = row_max(16); // ~+66°
        assert!(horn_n > equator * 0.25, "horn {horn_n:e} vs equator {equator:e}");
        // SAA: lat ≈ -26 (row 6), lon ≈ -50 (col 13).
        let saa = map[6][13];
        let pacific = map[6][34];
        assert!(saa > 5.0 * pacific.max(1e-12), "SAA {saa:e} vs Pacific {pacific:e}");
    }
}
