//! # ssplane-radiation
//!
//! Near-Earth trapped-radiation substrate for the `ss-plane` project
//! (§3.2 of the paper) — a from-scratch, calibrated stand-in for the
//! IRENE (AE9/AP9) model the paper uses, which is export-controlled and
//! unavailable offline.
//!
//! Physical structure reproduced (DESIGN.md §2 documents the substitution):
//!
//! * [`dipole`] — an **offset tilted dipole** geomagnetic field. The
//!   ~11.5° tilt and ~500 km offset of the dipole center are what create
//!   the *South Atlantic Anomaly*: on the side opposite the offset the
//!   field at a given altitude is weaker, so the inner belt reaches down
//!   into LEO.
//! * [`lshell`] — McIlwain L-shell and B/B₀ magnetic coordinates in the
//!   dipole approximation: the natural coordinates of trapped particles.
//! * [`belts`] — parametric Van Allen belt flux profiles: inner-belt
//!   protons and electrons (L ≈ 1.3–2), outer-belt electrons (L ≈ 4–6,
//!   whose "horns" intersect LEO at 55–70° latitude — the reason
//!   moderate-inclination orbits are a radiation worst case, Fig. 7).
//! * [`solar`] — a solar-cycle-24-like activity driver modulating the
//!   belts (used by the Fig. 6 "sample of 128 days" map).
//! * [`flux`] — the combined environment: flux by species at any position
//!   and epoch, plus gridded maps (Fig. 6).
//! * [`fluence`] — daily fluence accumulation along orbits (Fig. 7) and
//!   per-constellation statistics (Fig. 10).
//!
//! Absolute flux levels are calibrated to the decades the paper reports
//! (electron daily fluence of order 10⁹–10¹⁰ #/cm²/MeV at 560 km, protons
//! of order 10⁷); the *spatial structure* is what the paper's arguments
//! depend on, and it emerges from the field geometry rather than from
//! curve fitting.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod belts;
pub mod dipole;
pub mod error;
pub mod fluence;
pub mod flux;
pub mod lshell;
pub mod solar;

pub use error::{RadiationError, Result};
pub use flux::{RadiationEnvironment, Species};
pub use lshell::MagneticCoords;
