//! McIlwain L-shell magnetic coordinates in the dipole approximation.
//!
//! Trapped particles organize on drift shells labeled by `L` (the
//! equatorial crossing distance of the field line, in Earth radii) and by
//! the local field ratio `B/B₀(L)` (how far down the field line toward the
//! mirror points a position sits). All belt flux models in this crate are
//! functions of these two numbers, so radiation "geography" — the SAA, the
//! outer-belt horns — falls out of the field geometry computed here.

use crate::dipole::DipoleField;
use crate::error::{RadiationError, Result};
use ssplane_astro::constants::EARTH_RADIUS_KM;
use ssplane_astro::linalg::Vec3;

/// Magnetic coordinates of a position.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MagneticCoords {
    /// McIlwain L parameter \[Earth radii\]: `L = (r/Re)/cos²λₘ` in the
    /// dipole approximation.
    pub l_shell: f64,
    /// Local field magnitude \[T\].
    pub b_local: f64,
    /// Equatorial field on this L-shell \[T\]: `B₀/L³`.
    pub b_equatorial: f64,
    /// Magnetic latitude \[rad\].
    pub magnetic_latitude: f64,
}

impl MagneticCoords {
    /// Ratio of the local field to the shell's equatorial field (≥ 1 for
    /// physical trapped-particle positions).
    pub fn b_over_b0(&self) -> f64 {
        self.b_local / self.b_equatorial
    }
}

/// Computes magnetic coordinates for an ECEF position \[km\].
///
/// # Errors
/// Returns [`RadiationError::BelowSurface`] for positions under ~100 km
/// altitude, where trapped populations are scattered by the atmosphere and
/// the coordinates would be meaningless for this crate's purposes.
pub fn magnetic_coordinates(field: &DipoleField, ecef_km: Vec3) -> Result<MagneticCoords> {
    let geocentric_radius = ecef_km.norm();
    if geocentric_radius < EARTH_RADIUS_KM + 100.0 {
        return Err(RadiationError::BelowSurface { radius_km: geocentric_radius });
    }
    let r_dipole = field.dipole_radius(ecef_km);
    let lambda = field.magnetic_latitude(ecef_km);
    let cos2 = lambda.cos().powi(2).max(1e-6);
    let l_shell = (r_dipole / EARTH_RADIUS_KM) / cos2;
    let b_local = field.field_magnitude(ecef_km);
    let b_equatorial = field.b0 / l_shell.powi(3);
    Ok(MagneticCoords { l_shell, b_local, b_equatorial, magnetic_latitude: lambda })
}

/// Magnetic latitude \[rad\] at which the field line of shell `l`
/// intersects the sphere of radius `r_re` \[Earth radii\]:
/// `cos²λ = r/L`. Returns `None` when the line does not reach down to that
/// radius (`r_re > l`).
pub fn footprint_latitude(l: f64, r_re: f64) -> Option<f64> {
    if l <= 0.0 || r_re <= 0.0 || r_re > l {
        return None;
    }
    Some(((r_re / l).sqrt()).acos())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssplane_astro::geo::GeoPoint;

    fn at(lat_deg: f64, lon_deg: f64, alt_km: f64) -> Vec3 {
        GeoPoint::from_degrees(lat_deg, lon_deg).to_unit_vector() * (EARTH_RADIUS_KM + alt_km)
    }

    #[test]
    fn centered_dipole_l_values() {
        let d = DipoleField::centered_aligned();
        // Equator at altitude h: L = 1 + h/Re.
        let c = magnetic_coordinates(&d, at(0.0, 10.0, 560.0)).unwrap();
        assert!((c.l_shell - (1.0 + 560.0 / EARTH_RADIUS_KM)).abs() < 1e-9);
        assert!((c.b_over_b0() - 1.0).abs() < 1e-9);
        // 60° magnetic latitude at the same radius: L = r/cos²60 = 4r.
        let c = magnetic_coordinates(&d, at(60.0, 10.0, 560.0)).unwrap();
        let r_re = 1.0 + 560.0 / EARTH_RADIUS_KM;
        assert!((c.l_shell - r_re / 0.25).abs() < 1e-6);
        // Dipole identity: B/B0 = sqrt(1+3sin²λ)/cos⁶λ.
        let expect = (1.0f64 + 3.0 * (60f64.to_radians()).sin().powi(2)).sqrt()
            / (60f64.to_radians()).cos().powi(6);
        assert!((c.b_over_b0() - expect).abs() / expect < 1e-9);
    }

    #[test]
    fn outer_belt_horns_at_high_latitude() {
        // The L=4.5..6 shells must come down to 560 km at magnetic
        // latitudes ~60-66°.
        let r_re = 1.0 + 560.0 / EARTH_RADIUS_KM;
        let lo = footprint_latitude(4.5, r_re).unwrap().to_degrees();
        let hi = footprint_latitude(6.0, r_re).unwrap().to_degrees();
        assert!((60.0..64.0).contains(&lo), "L=4.5 footprint {lo}");
        assert!((64.0..68.0).contains(&hi), "L=6 footprint {hi}");
        assert!(footprint_latitude(1.0, 1.5).is_none());
        assert!(footprint_latitude(-1.0, 0.5).is_none());
    }

    #[test]
    fn saa_has_low_l_at_leo() {
        // In the SAA, LEO positions sit on unusually low L-shells compared
        // with the same geographic latitude elsewhere.
        let d = DipoleField::default();
        let saa = magnetic_coordinates(&d, at(-25.0, -45.0, 560.0)).unwrap();
        let ref_pt = magnetic_coordinates(&d, at(-25.0, 135.0, 560.0)).unwrap();
        assert!(saa.l_shell < ref_pt.l_shell, "SAA L {} vs {}", saa.l_shell, ref_pt.l_shell);
        assert!(saa.b_local < ref_pt.b_local);
    }

    #[test]
    fn below_surface_rejected() {
        let d = DipoleField::default();
        assert!(matches!(
            magnetic_coordinates(&d, Vec3::new(6000.0, 0.0, 0.0)),
            Err(RadiationError::BelowSurface { .. })
        ));
    }

    #[test]
    fn b_over_b0_at_least_one_off_equator() {
        let d = DipoleField::centered_aligned();
        for lat in [-70.0, -40.0, -10.0, 0.0, 25.0, 55.0, 80.0] {
            let c = magnetic_coordinates(&d, at(lat, 0.0, 800.0)).unwrap();
            assert!(c.b_over_b0() >= 1.0 - 1e-9, "lat {lat}: B/B0 = {}", c.b_over_b0());
        }
    }
}
