//! Solar-activity driver for the radiation environment.
//!
//! Trapped-particle fluxes — the outer electron belt especially — respond
//! strongly to solar/geomagnetic activity. The paper samples days from
//! *solar cycle 24* when computing its radiation maps (Fig. 6); this
//! module provides a deterministic cycle-24-like activity index:
//! an ~11-year envelope, 27-day solar-rotation modulation, and
//! day-to-day noise (hash-based, so the index is a pure function of the
//! epoch).

use ssplane_astro::time::Epoch;

/// Deterministic pseudo-random `[0, 1)` value from an integer
/// (SplitMix64 finalizer) — used for reproducible day-to-day noise
/// without carrying RNG state.
fn hash01(x: u64) -> f64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

/// A solar-cycle activity model producing an index in `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolarCycle {
    /// Epoch of the cycle minimum (start).
    pub start: Epoch,
    /// Cycle length \[days\] (min to min).
    pub period_days: f64,
    /// Amplitude of the 27-day rotational modulation.
    pub rotation_amplitude: f64,
    /// Amplitude of the daily noise.
    pub noise_amplitude: f64,
    /// Seed folded into the daily noise.
    pub seed: u64,
}

impl SolarCycle {
    /// Solar cycle 24: minimum December 2008, maximum around April 2014,
    /// next minimum December 2019.
    pub fn cycle24() -> Self {
        SolarCycle {
            start: Epoch::from_calendar(2008, 12, 1, 0, 0, 0.0),
            period_days: 4018.0, // ~11 years
            rotation_amplitude: 0.08,
            noise_amplitude: 0.10,
            seed: 24,
        }
    }

    /// Activity index in `[0, 1]` at `epoch`. 0 = deep solar minimum,
    /// 1 = strong maximum.
    pub fn activity(&self, epoch: Epoch) -> f64 {
        let t_days = (epoch - self.start) / 86_400.0;
        let phase = (t_days / self.period_days).rem_euclid(1.0);
        // Asymmetric envelope: fast rise (~4 years), slower decline,
        // which is characteristic of observed cycles.
        let envelope = if phase < 0.4 {
            (core::f64::consts::FRAC_PI_2 * phase / 0.4).sin().powi(2)
        } else {
            (core::f64::consts::FRAC_PI_2 * (1.0 - phase) / 0.6).sin().powi(2)
        };
        let rotation =
            self.rotation_amplitude * (core::f64::consts::TAU * t_days / 27.0).sin() * envelope;
        let day_index = t_days.floor() as i64 as u64;
        let noise = self.noise_amplitude * (hash01(day_index ^ self.seed) - 0.5) * 2.0;
        (envelope + rotation + noise).clamp(0.0, 1.0)
    }

    /// `n` deterministic pseudo-random day epochs within the cycle (the
    /// paper's "sample of 128 days from solar cycle 24", Fig. 6).
    pub fn sample_days(&self, n: usize, seed: u64) -> Vec<Epoch> {
        (0..n)
            .map(|k| {
                let day = hash01(seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(k as u64))
                    * self.period_days;
                self.start + day * 86_400.0
            })
            .collect()
    }

    /// Outer-belt electron scaling at `epoch` (storm-time enhancements:
    /// roughly 0.4× at minimum to 2.2× at maximum).
    pub fn outer_electron_factor(&self, epoch: Epoch) -> f64 {
        0.4 + 1.8 * self.activity(epoch)
    }

    /// Inner-belt electron scaling (mild).
    pub fn inner_electron_factor(&self, epoch: Epoch) -> f64 {
        0.8 + 0.4 * self.activity(epoch)
    }

    /// Inner-belt proton scaling (slightly *anti*-correlated with
    /// activity: atmospheric expansion at maximum erodes the belt's
    /// low-altitude edge).
    pub fn proton_factor(&self, epoch: Epoch) -> f64 {
        1.1 - 0.25 * self.activity(epoch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn activity_bounded_and_deterministic() {
        let c = SolarCycle::cycle24();
        for d in 0..4018 {
            let e = c.start + d as f64 * 86_400.0;
            let a = c.activity(e);
            assert!((0.0..=1.0).contains(&a), "day {d}: {a}");
            assert_eq!(a, c.activity(e));
        }
    }

    #[test]
    fn cycle24_peak_near_2014() {
        let c = SolarCycle::cycle24();
        // Average activity in 2014 should far exceed 2009 and 2019.
        let year_avg = |year: i32| -> f64 {
            (0..360)
                .map(|d| {
                    c.activity(Epoch::from_calendar(year, 1, 1, 0, 0, 0.0) + d as f64 * 86_400.0)
                })
                .sum::<f64>()
                / 360.0
        };
        let quiet_start = year_avg(2009);
        let max = year_avg(2014);
        let quiet_end = year_avg(2019);
        assert!(max > 0.6, "2014 avg = {max}");
        assert!(quiet_start < 0.3, "2009 avg = {quiet_start}");
        assert!(quiet_end < 0.35, "2019 avg = {quiet_end}");
    }

    #[test]
    fn sample_days_inside_cycle() {
        let c = SolarCycle::cycle24();
        let days = c.sample_days(128, 1);
        assert_eq!(days.len(), 128);
        for d in &days {
            let offset = (*d - c.start) / 86_400.0;
            assert!((0.0..c.period_days).contains(&offset));
        }
        // Deterministic and seed-sensitive.
        assert_eq!(c.sample_days(128, 1), days);
        assert_ne!(c.sample_days(128, 2), days);
    }

    #[test]
    fn scaling_factor_ranges() {
        let c = SolarCycle::cycle24();
        for d in (0..4018).step_by(13) {
            let e = c.start + d as f64 * 86_400.0;
            // Half-open bounds with float slack (activity may hit exactly 1).
            assert!((0.39..=2.21).contains(&c.outer_electron_factor(e)));
            assert!((0.79..=1.21).contains(&c.inner_electron_factor(e)));
            assert!((0.84..=1.11).contains(&c.proton_factor(e)));
        }
    }

    #[test]
    fn proton_anticorrelates_with_electrons() {
        let c = SolarCycle::cycle24();
        let quiet = Epoch::from_calendar(2009, 3, 1, 0, 0, 0.0);
        let active = Epoch::from_calendar(2014, 4, 1, 0, 0, 0.0);
        assert!(c.outer_electron_factor(active) > c.outer_electron_factor(quiet));
        assert!(c.proton_factor(active) < c.proton_factor(quiet));
    }
}
