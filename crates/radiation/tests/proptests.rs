//! Property-based tests for the radiation substrate.

use proptest::prelude::*;
use ssplane_astro::geo::GeoPoint;
use ssplane_astro::linalg::Vec3;
use ssplane_astro::time::Epoch;
use ssplane_radiation::dipole::DipoleField;
use ssplane_radiation::lshell::magnetic_coordinates;
use ssplane_radiation::solar::SolarCycle;
use ssplane_radiation::RadiationEnvironment;

fn surface_point(lat: f64, lon: f64, alt: f64) -> Vec3 {
    GeoPoint::from_degrees(lat, lon).to_unit_vector() * (6378.137 + alt)
}

proptest! {
    #[test]
    fn flux_nonnegative_everywhere(
        lat in -89.0f64..89.0,
        lon in -180.0f64..180.0,
        alt in 300.0f64..2000.0,
        days in 0.0f64..4000.0,
    ) {
        let env = RadiationEnvironment::default();
        let epoch = env.solar.start + days * 86_400.0;
        let s = env.flux_ecef(surface_point(lat, lon, alt), epoch).unwrap();
        prop_assert!(s.electron >= 0.0 && s.electron.is_finite());
        prop_assert!(s.proton >= 0.0 && s.proton.is_finite());
    }

    #[test]
    fn magnetic_coords_invariants(
        lat in -89.0f64..89.0,
        lon in -180.0f64..180.0,
        alt in 200.0f64..3000.0,
    ) {
        let field = DipoleField::default();
        let c = magnetic_coordinates(&field, surface_point(lat, lon, alt)).unwrap();
        // L at least the dipole-centered radial distance in Earth radii
        // (equality at the magnetic equator).
        prop_assert!(c.l_shell >= 0.8, "L = {}", c.l_shell);
        prop_assert!(c.b_local > 0.0 && c.b_local.is_finite());
        prop_assert!(c.b_equatorial > 0.0);
        // B/B0 >= 1 within numerical slack (off-equator fields stronger).
        prop_assert!(c.b_over_b0() > 0.95, "B/B0 = {}", c.b_over_b0());
        prop_assert!(c.magnetic_latitude.abs() <= core::f64::consts::FRAC_PI_2 + 1e-12);
    }

    #[test]
    fn solar_activity_bounded(days in -10_000.0f64..10_000.0) {
        let c = SolarCycle::cycle24();
        let a = c.activity(Epoch::from_days_j2000(days));
        prop_assert!((0.0..=1.0).contains(&a));
    }

    #[test]
    fn field_magnitude_decreases_with_altitude(
        lat in -80.0f64..80.0,
        lon in -180.0f64..180.0,
        alt in 300.0f64..2000.0,
    ) {
        let field = DipoleField::default();
        let b_low = field.field_magnitude(surface_point(lat, lon, alt));
        let b_high = field.field_magnitude(surface_point(lat, lon, alt + 500.0));
        prop_assert!(b_high < b_low);
    }

    #[test]
    fn dipole_field_is_smooth_nearby(
        lat in -80.0f64..80.0,
        lon in -170.0f64..170.0,
    ) {
        // Adjacent points (0.5°) differ by less than 5% in |B|.
        let field = DipoleField::default();
        let a = field.field_magnitude(surface_point(lat, lon, 560.0));
        let b = field.field_magnitude(surface_point(lat + 0.5, lon + 0.5, 560.0));
        prop_assert!((a - b).abs() / a < 0.05, "jump {} -> {}", a, b);
    }
}
