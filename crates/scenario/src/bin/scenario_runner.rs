//! `scenario-runner` — run scenario sweeps from TOML files or the
//! built-in library.
//!
//! ```text
//! scenario-runner [OPTIONS] [SOURCE...]
//!
//! SOURCE             a scenario TOML file, or a built-in name
//!                    (default: the built-in 'paper-grid' sweep)
//! --list             list registered designers and built-in scenarios,
//!                    then exit
//! --threads N        worker threads (default: all cores)
//! --out PATH         write JSON-lines reports to PATH (default: stdout)
//! --summary          print the per-scenario summary table to stderr
//! --timings PATH     write per-scenario per-stage wall-clock timings
//!                    (tab-separated) to PATH, or to stderr for '-'.
//!                    A side channel: the report JSON stays
//!                    byte-deterministic with or without it.
//! ```
//!
//! Exit code 0 if every scenario point completed, 1 otherwise.

use ssplane_scenario::runner::Runner;
use ssplane_scenario::{config, library};
use std::io::Write;
use std::process::ExitCode;

const USAGE: &str = "usage: scenario-runner [--list] [--threads N] [--out PATH] [--summary] \
                     [--timings PATH] [SOURCE...]";

struct Args {
    sources: Vec<String>,
    threads: usize,
    out: Option<String>,
    timings: Option<String>,
    summary: bool,
    list: bool,
    help: bool,
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        sources: Vec::new(),
        threads: 0,
        out: None,
        timings: None,
        summary: false,
        list: false,
        help: false,
    };
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--list" => args.list = true,
            "--summary" => args.summary = true,
            "--threads" => {
                let v = it.next().ok_or("--threads needs a value")?;
                args.threads = v.parse().map_err(|_| format!("bad thread count '{v}'"))?;
            }
            "--out" => {
                args.out = Some(it.next().ok_or("--out needs a path")?.clone());
            }
            "--timings" => {
                args.timings = Some(it.next().ok_or("--timings needs a path (or '-')")?.clone());
            }
            "--help" | "-h" => args.help = true,
            other if other.starts_with("--") => return Err(format!("unknown option '{other}'")),
            other => args.sources.push(other.to_string()),
        }
    }
    Ok(args)
}

/// Resolves a source argument: an existing file path wins, then a
/// built-in name.
fn load_source(source: &str) -> Result<ssplane_scenario::SweepSpec, String> {
    let path = std::path::Path::new(source);
    if path.exists() {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("cannot read {source}: {e}"))?;
        return config::sweep_from_toml(&text).map_err(|e| format!("{source}: {e}"));
    }
    match library::find(source) {
        Some(builtin) => library::sweep(builtin).map_err(|e| format!("{source}: {e}")),
        None => {
            Err(format!("'{source}' is neither a file nor a built-in (try --list for built-ins)"))
        }
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            eprintln!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };

    if args.help {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }

    if args.list {
        println!("registered designers (design.kind / design.kinds):");
        for (name, summary) in ssplane_core::system::DESIGNER_REGISTRY {
            println!("  {name:<20} {summary}");
        }
        println!("built-in scenarios:");
        for b in library::BUILTINS {
            let points = library::sweep(b).and_then(|s| s.expand()).map(|v| v.len());
            match points {
                Ok(n) => println!("  {:<20} {:>3} points  {}", b.name, n, b.summary),
                Err(e) => println!("  {:<20} INVALID: {e}", b.name),
            }
        }
        return ExitCode::SUCCESS;
    }

    let sources =
        if args.sources.is_empty() { vec!["paper-grid".to_string()] } else { args.sources.clone() };

    // Resolve every source before running any sweep: a typo in the last
    // SOURCE must fail fast, not after minutes of compute on the first.
    let mut sweeps = Vec::with_capacity(sources.len());
    for source in &sources {
        match load_source(source) {
            Ok(s) => sweeps.push(s),
            Err(msg) => {
                eprintln!("{msg}");
                return ExitCode::FAILURE;
            }
        }
    }

    let runner = Runner::with_threads(args.threads);
    let mut all_ok = true;
    let mut jsonl = String::new();
    let mut timings = String::new();
    for (source, sweep) in sources.iter().zip(&sweeps) {
        let points = sweep.len();
        eprintln!("running '{}': {} scenario point(s)", sweep.base.name, points);
        let outcome = match runner.run_sweep(sweep) {
            Ok(o) => o,
            Err(e) => {
                eprintln!("{source}: {e}");
                return ExitCode::FAILURE;
            }
        };
        all_ok &= outcome.ok_count() == outcome.reports.len();
        jsonl.push_str(&outcome.to_jsonl());
        if args.timings.is_some() {
            let table = outcome.timings_table();
            if timings.is_empty() {
                timings.push_str(&table);
            } else {
                // One shared header across sources: append rows only.
                timings.push_str(table.split_once('\n').map_or("", |(_, rows)| rows));
            }
        }
        if args.summary {
            eprint!("{}", outcome.summary());
        }
        eprintln!(
            "'{}': {}/{} points completed",
            sweep.base.name,
            outcome.ok_count(),
            outcome.reports.len()
        );
    }

    match &args.out {
        Some(path) => {
            if let Err(e) =
                std::fs::File::create(path).and_then(|mut f| f.write_all(jsonl.as_bytes()))
            {
                eprintln!("cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("wrote {} report line(s) to {path}", jsonl.lines().count());
        }
        None => print!("{jsonl}"),
    }

    // The timing side channel, kept away from the report stream so the
    // JSON stays byte-deterministic.
    match args.timings.as_deref() {
        Some("-") => eprint!("{timings}"),
        Some(path) => {
            if let Err(e) =
                std::fs::File::create(path).and_then(|mut f| f.write_all(timings.as_bytes()))
            {
                eprintln!("cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("wrote stage timings to {path}");
        }
        None => {}
    }

    if all_ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
