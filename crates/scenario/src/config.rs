//! Loading scenario/sweep specs from their TOML form.
//!
//! The file format is flat sections of `key = value` pairs; every
//! `section.key` pair funnels through [`crate::sweep::apply_param`], so
//! the file surface and the sweep-axis surface are one and the same. The
//! special `[sweep]` section declares parameter axes: each key is a
//! dotted parameter path (quoted, since bare TOML keys cannot contain
//! dots meaningfully here) and its value the array of grid values.
//!
//! ```toml
//! name = "solar-sweep"
//! seed = 42
//!
//! [demand]
//! total_demand_b = 200.0
//!
//! [sweep]
//! "radiation.solar" = ["min", "cycle24", "max"]
//! "demand.total_demand_b" = [50.0, 200.0]
//! ```

use crate::error::{Result, ScenarioError};
use crate::spec::ScenarioSpec;
use crate::sweep::{apply_param, SweepAxis, SweepSpec};
use crate::toml;

/// Parses a TOML scenario file into a sweep (a file without a `[sweep]`
/// section is a single-scenario sweep).
///
/// # Errors
/// Parse errors, unknown parameters, or un-coercible values.
pub fn sweep_from_toml(source: &str) -> Result<SweepSpec> {
    let doc = toml::parse(source)?;
    let mut base = ScenarioSpec::named("scenario");
    for (section, entries) in &doc {
        if section == "sweep" {
            continue;
        }
        for (key, value) in entries.iter() {
            let path = if section.is_empty() { key.clone() } else { format!("{section}.{key}") };
            apply_param(&mut base, &path, value)?;
        }
    }

    // Axes in file-declaration order: the last declared axis varies
    // fastest in the expansion, as the README documents.
    let mut axes = Vec::new();
    if let Some(sweep) = doc.get("sweep") {
        for (param, value) in sweep.iter() {
            let values = value
                .as_array()
                .ok_or_else(|| {
                    ScenarioError::bad_value(
                        &format!("sweep.{param}"),
                        &crate::sweep::canonical_value(value),
                        "an array of axis values",
                    )
                })?
                .to_vec();
            if values.is_empty() {
                return Err(ScenarioError::bad_value(
                    &format!("sweep.{param}"),
                    "[]",
                    "at least one axis value",
                ));
            }
            // Check the parameter path and every value eagerly, so a typo
            // fails at load time instead of mid-sweep.
            for v in &values {
                let mut probe = base.clone();
                apply_param(&mut probe, param, v)?;
            }
            axes.push(SweepAxis { param: param.clone(), values });
        }
    }
    Ok(SweepSpec { base, axes })
}

/// Parses a TOML file that must describe a single scenario (no `[sweep]`
/// section).
///
/// # Errors
/// As [`sweep_from_toml`], plus if a sweep section is present.
pub fn scenario_from_toml(source: &str) -> Result<ScenarioSpec> {
    let sweep = sweep_from_toml(source)?;
    if !sweep.axes.is_empty() {
        return Err(ScenarioError::bad_value(
            "sweep",
            "present",
            "no [sweep] section for a single scenario",
        ));
    }
    sweep.base.validate()?;
    Ok(sweep.base)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::SolarActivity;

    #[test]
    fn full_file_round_trip() {
        let sweep = sweep_from_toml(
            r#"
name = "demo"
seed = 7

[design]
kind = "ss"
altitude_km = 550.0

[demand]
total_demand_b = 75.0

[radiation]
solar = "max"

[spares]
policy = "shared-pool"
count = 12

[sweep]
"attack.planes_lost" = [0, 2]
"#,
        )
        .unwrap();
        assert_eq!(sweep.base.name, "demo");
        assert_eq!(sweep.base.seed, 7);
        assert_eq!(sweep.base.design.ss.altitude_km, 550.0);
        assert_eq!(sweep.base.design.wd.altitude_km, 550.0);
        assert_eq!(sweep.base.demand.total_demand_b, 75.0);
        assert_eq!(sweep.base.radiation.solar, SolarActivity::Max);
        assert_eq!(sweep.axes.len(), 1);
        let specs = sweep.expand().unwrap();
        assert_eq!(specs.len(), 2);
        assert_eq!(specs[1].attack.planes_lost, 2);
        // Axis points inherit the base and differ only on the axis.
        assert_eq!(specs[0].design.ss.altitude_km, 550.0);
        assert_ne!(specs[0].seed, specs[1].seed);
    }

    #[test]
    fn sweep_axes_keep_declaration_order() {
        // The last *declared* axis must vary fastest, regardless of the
        // keys' alphabetical order.
        let sweep = sweep_from_toml(
            "[radiation]\nenabled = false\n[survivability]\nenabled = false\n[sweep]\n\
             \"radiation.phases\" = [1, 2]\n\"attack.planes_lost\" = [0, 3]\n",
        )
        .unwrap();
        assert_eq!(sweep.axes[0].param, "radiation.phases");
        assert_eq!(sweep.axes[1].param, "attack.planes_lost");
        let specs = sweep.expand().unwrap();
        assert_eq!(
            specs.iter().map(|s| s.attack.planes_lost).collect::<Vec<_>>(),
            vec![0, 3, 0, 3],
            "last declared axis varies fastest"
        );
        assert_eq!(specs.iter().map(|s| s.radiation.phases).collect::<Vec<_>>(), vec![1, 1, 2, 2]);
    }

    #[test]
    fn unknown_axis_param_fails_at_load() {
        let err = sweep_from_toml("[sweep]\n\"demand.warp\" = [1]\n").unwrap_err();
        assert!(matches!(err, ScenarioError::UnknownParameter { .. }), "{err}");
    }

    #[test]
    fn scenario_from_toml_rejects_sweeps() {
        assert!(scenario_from_toml("[sweep]\n\"attack.planes_lost\" = [1]\n").is_err());
        let spec = scenario_from_toml("name = \"one\"\n").unwrap();
        assert_eq!(spec.name, "one");
    }
}
