//! Error type for scenario parsing, validation, and execution.

use core::fmt;

/// Result alias with [`ScenarioError`].
pub type Result<T> = core::result::Result<T, ScenarioError>;

/// Errors produced by the scenario engine.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioError {
    /// A config value was missing or out of its domain.
    BadValue {
        /// Dotted parameter path (`section.key`).
        key: String,
        /// The offending value as written.
        value: String,
        /// Constraint description.
        expected: String,
    },
    /// The TOML source could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// A sweep axis referenced a parameter the engine does not expose.
    UnknownParameter {
        /// The dotted path as written.
        key: String,
    },
    /// A constellation-design or evaluation routine failed.
    Core(ssplane_core::CoreError),
    /// A networking or survivability routine failed.
    Lsn(ssplane_lsn::LsnError),
    /// A radiation routine failed.
    Radiation(ssplane_radiation::RadiationError),
    /// A demand-model routine failed.
    Demand(ssplane_demand::DemandError),
    /// An astrodynamics routine failed.
    Astro(ssplane_astro::AstroError),
    /// Reading a scenario file failed.
    Io {
        /// The path that failed.
        path: String,
        /// The OS error text.
        message: String,
    },
}

impl ScenarioError {
    /// Shorthand constructor for [`ScenarioError::BadValue`].
    pub fn bad_value(key: &str, value: &str, expected: &str) -> Self {
        ScenarioError::BadValue {
            key: key.to_string(),
            value: value.to_string(),
            expected: expected.to_string(),
        }
    }
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::BadValue { key, value, expected } => {
                write!(f, "bad value for {key}: got '{value}', expected {expected}")
            }
            ScenarioError::Parse { line, message } => {
                write!(f, "scenario config parse error at line {line}: {message}")
            }
            ScenarioError::UnknownParameter { key } => {
                write!(f, "unknown sweep parameter '{key}'")
            }
            ScenarioError::Core(e) => write!(f, "design error: {e}"),
            ScenarioError::Lsn(e) => write!(f, "networking/survivability error: {e}"),
            ScenarioError::Radiation(e) => write!(f, "radiation error: {e}"),
            ScenarioError::Demand(e) => write!(f, "demand error: {e}"),
            ScenarioError::Astro(e) => write!(f, "astrodynamics error: {e}"),
            ScenarioError::Io { path, message } => write!(f, "cannot read {path}: {message}"),
        }
    }
}

impl std::error::Error for ScenarioError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ScenarioError::Core(e) => Some(e),
            ScenarioError::Lsn(e) => Some(e),
            ScenarioError::Radiation(e) => Some(e),
            ScenarioError::Demand(e) => Some(e),
            ScenarioError::Astro(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ssplane_core::CoreError> for ScenarioError {
    fn from(e: ssplane_core::CoreError) -> Self {
        ScenarioError::Core(e)
    }
}

impl From<ssplane_lsn::LsnError> for ScenarioError {
    fn from(e: ssplane_lsn::LsnError) -> Self {
        ScenarioError::Lsn(e)
    }
}

impl From<ssplane_radiation::RadiationError> for ScenarioError {
    fn from(e: ssplane_radiation::RadiationError) -> Self {
        ScenarioError::Radiation(e)
    }
}

impl From<ssplane_demand::DemandError> for ScenarioError {
    fn from(e: ssplane_demand::DemandError) -> Self {
        ScenarioError::Demand(e)
    }
}

impl From<ssplane_astro::AstroError> for ScenarioError {
    fn from(e: ssplane_astro::AstroError) -> Self {
        ScenarioError::Astro(e)
    }
}
