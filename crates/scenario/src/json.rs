//! A tiny, deterministic JSON emitter for scenario reports.
//!
//! The runner's byte-identical-output guarantee rests on this module:
//! fields are emitted in insertion order, floats through Rust's shortest
//! round-trip `Display` (which is locale-independent and stable across
//! platforms), and non-finite floats as `null` (JSON has no NaN).

#![allow(clippy::must_use_candidate)]

use std::fmt::Write;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (emitted without a decimal point).
    Int(i64),
    /// An unsigned integer.
    UInt(u64),
    /// A float (non-finite values emit as `null`).
    Num(f64),
    /// A string (escaped on emission).
    Str(String),
    /// An ordered array.
    Arr(Vec<Json>),
    /// An object with **insertion-ordered** fields.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Shorthand for a string value.
    pub fn str(s: &str) -> Json {
        Json::Str(s.to_string())
    }

    /// An empty object builder.
    pub fn obj() -> JsonObj {
        JsonObj { fields: Vec::new() }
    }

    /// Serializes to a compact single-line string.
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::UInt(u) => {
                let _ = write!(out, "{u}");
            }
            Json::Num(x) => {
                if x.is_finite() {
                    // `Display` omits the decimal point for integral
                    // floats; keep it so consumers type the field as
                    // float. (`1` -> `1.0`)
                    let start = out.len();
                    let _ = write!(out, "{x}");
                    if !out[start..].contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => {
                            let _ = write!(out, "\\u{:04x}", c as u32);
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (k, item) in items.iter().enumerate() {
                    if k > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (k, (key, val)) in fields.iter().enumerate() {
                    if k > 0 {
                        out.push(',');
                    }
                    Json::Str(key.clone()).write(out);
                    out.push(':');
                    val.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Fluent builder for [`Json::Obj`].
#[derive(Debug, Clone, Default)]
pub struct JsonObj {
    fields: Vec<(String, Json)>,
}

impl JsonObj {
    /// Appends a field (insertion order is emission order).
    pub fn field(mut self, key: &str, value: Json) -> Self {
        self.fields.push((key.to_string(), value));
        self
    }

    /// Appends a float field.
    pub fn num(self, key: &str, value: f64) -> Self {
        self.field(key, Json::Num(value))
    }

    /// Appends an unsigned integer field.
    pub fn uint(self, key: &str, value: u64) -> Self {
        self.field(key, Json::UInt(value))
    }

    /// Appends a string field.
    pub fn str(self, key: &str, value: &str) -> Self {
        self.field(key, Json::str(value))
    }

    /// Finishes the object.
    pub fn build(self) -> Json {
        Json::Obj(self.fields)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emission_is_ordered_and_escaped() {
        let j = Json::obj()
            .str("name", "a\"b\\c\n")
            .uint("n", 3)
            .num("x", 1.5)
            .field("arr", Json::Arr(vec![Json::Int(-1), Json::Null, Json::Bool(true)]))
            .build();
        assert_eq!(
            j.to_string_compact(),
            r#"{"name":"a\"b\\c\n","n":3,"x":1.5,"arr":[-1,null,true]}"#
        );
    }

    #[test]
    fn floats_keep_a_decimal_point() {
        assert_eq!(Json::Num(1.0).to_string_compact(), "1.0");
        assert_eq!(Json::Num(0.5).to_string_compact(), "0.5");
        assert_eq!(Json::Num(-3.0).to_string_compact(), "-3.0");
        assert_eq!(Json::Num(1e-9).to_string_compact(), "0.000000001");
        assert_eq!(Json::Num(f64::NAN).to_string_compact(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_string_compact(), "null");
        let nested = Json::Arr(vec![Json::Num(2.0), Json::Num(3.25)]);
        assert_eq!(nested.to_string_compact(), "[2.0,3.25]");
    }
}
