//! # ssplane-scenario
//!
//! A config-driven, parallel scenario-sweep engine over the full
//! `ss-plane` pipeline — the repository's experiment platform.
//!
//! The paper's claim (SS-plane constellations match Walker baselines on
//! demand satisfaction while slashing radiation exposure) is only as
//! strong as the range of scenarios it survives. This crate turns "add a
//! scenario" from copy-pasting a `fig*.rs` pipeline into writing a TOML
//! file:
//!
//! * [`spec`] — [`spec::ScenarioSpec`]: constellation designs (any
//!   subset of the SS-plane / demand-aware Walker / RGT designer
//!   registry via `design.kinds`, with the designers' own config structs
//!   embedded), demand level, grid resolution and synthesis seed,
//!   solar-cycle setting, failure model + spare policy, plane-loss
//!   attacks, traffic/routing options, and mission horizon;
//! * [`sweep`] — [`sweep::SweepSpec`]: parameter grids expanded into
//!   concrete scenarios with deterministic per-scenario seeds (stable
//!   under grid reordering);
//! * [`toml`] / [`config`] — the TOML-subset config format;
//! * [`runner`] — [`runner::Runner`]: a thread-pooled executor driving
//!   `ssplane_core::designer` → `ssplane_demand` →
//!   `ssplane_radiation::fluence` → `ssplane_lsn::{survivability,
//!   traffic, routing}` end-to-end, with byte-identical JSON-lines
//!   output regardless of thread count;
//! * [`report`] — typed per-scenario results and their JSON form;
//! * [`library`] — the built-in scenarios (`scenarios/*.toml`).
//!
//! The `scenario-runner` binary is the CLI; `ssplane-bench`'s Fig. 9 and
//! Fig. 10 pipelines run through this engine, so the figures and the
//! platform cannot drift apart.
//!
//! ## Quick example
//!
//! ```
//! use ssplane_scenario::config::sweep_from_toml;
//! use ssplane_scenario::runner::Runner;
//!
//! let sweep = sweep_from_toml(r#"
//!     name = "quick"
//!     [demand]
//!     total_demand_b = 10.0
//!     [radiation]
//!     enabled = false
//!     [survivability]
//!     enabled = false
//!     [sweep]
//!     "design.kind" = ["ss", "walker"]
//! "#).unwrap();
//! let outcome = Runner::with_threads(2).run_sweep(&sweep).unwrap();
//! assert_eq!(outcome.reports.len(), 2);
//! let jsonl = outcome.to_jsonl();
//! assert_eq!(jsonl.lines().count(), 2);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod config;
pub mod error;
pub mod json;
pub mod library;
pub mod report;
pub mod runner;
pub mod spec;
pub mod sweep;
pub mod toml;

pub use error::{Result, ScenarioError};
pub use report::{NamedSystemReport, ScenarioReport, SystemReport};
pub use runner::{execute_scenario, execute_scenario_timed, Runner, ScenarioTimings, SweepOutcome};
pub use spec::{resolve_design_kind, ScenarioSpec};
pub use sweep::SweepSpec;
