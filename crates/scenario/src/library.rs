//! The built-in scenario library: the `scenarios/*.toml` files at the
//! repository root, embedded at compile time so `scenario-runner` can run
//! them by name anywhere and so the test suite pins them all as valid.

use crate::config::sweep_from_toml;
use crate::error::Result;
use crate::sweep::SweepSpec;

/// One built-in scenario file.
#[derive(Debug, Clone, Copy)]
pub struct Builtin {
    /// The name `scenario-runner` resolves.
    pub name: &'static str,
    /// One-line description for `--list`.
    pub summary: &'static str,
    /// The embedded TOML source.
    pub toml: &'static str,
}

/// Every built-in, in presentation order.
pub const BUILTINS: &[Builtin] = &[
    Builtin {
        name: "baseline",
        summary: "Figs. 9/10: SS vs Walker across demand levels, radiation + survivability",
        toml: include_str!("../../../scenarios/baseline.toml"),
    },
    Builtin {
        name: "paper-grid",
        summary: "36-point default grid: demand x solar activity x spare budget",
        toml: include_str!("../../../scenarios/paper-grid.toml"),
    },
    Builtin {
        name: "solar-sweep",
        summary: "solar min / mid / max sensitivity at two demand levels",
        toml: include_str!("../../../scenarios/solar-sweep.toml"),
    },
    Builtin {
        name: "plane-attack",
        summary: "plane-loss attacks x spare budgets: capacity retention and availability",
        toml: include_str!("../../../scenarios/plane-attack.toml"),
    },
    Builtin {
        name: "spare-budget",
        summary: "the '2-10 spares per plane' practice: budget x resupply cadence",
        toml: include_str!("../../../scenarios/spare-budget.toml"),
    },
    Builtin {
        name: "mega-constellation",
        summary: "demand pushed to 10k-satellite Walker scale",
        toml: include_str!("../../../scenarios/mega-constellation.toml"),
    },
    Builtin {
        name: "routing",
        summary: "traffic assignment + time-expanded NYC->London route over an SS design",
        toml: include_str!("../../../scenarios/routing.toml"),
    },
    Builtin {
        name: "walker-network",
        summary: "the same networking stage over the Walker baseline's plane geometry",
        toml: include_str!("../../../scenarios/walker-network.toml"),
    },
    Builtin {
        name: "design-shootout",
        summary: "the full designer registry side by side, scored per satellite spent",
        toml: include_str!("../../../scenarios/design-shootout.toml"),
    },
    Builtin {
        name: "design-catalog",
        summary: "deployed Starlink shells + slim Walker under whole-shell attacks",
        toml: include_str!("../../../scenarios/design-catalog.toml"),
    },
    Builtin {
        name: "time-resolved",
        summary: "multi-slot network.time_grid: per-slot connectivity, load, delay percentiles",
        toml: include_str!("../../../scenarios/time-resolved.toml"),
    },
    Builtin {
        name: "disruption",
        summary: "attack kinds x weibull failures: the outage-coupled degraded network stage",
        toml: include_str!("../../../scenarios/disruption.toml"),
    },
    Builtin {
        name: "attack-opt",
        summary: "adversarial attack search: the worst k-plane set vs the routed network",
        toml: include_str!("../../../scenarios/attack-opt.toml"),
    },
    Builtin {
        name: "traffic-scale",
        summary: "gravity-model demand under per-link capacities: the served-demand metric",
        toml: include_str!("../../../scenarios/traffic-scale.toml"),
    },
    Builtin {
        name: "percolation",
        summary: "phase-transition sweeps: targeted-vs-random masking thresholds, lambda2",
        toml: include_str!("../../../scenarios/percolation.toml"),
    },
];

/// Looks a built-in up by name.
pub fn find(name: &str) -> Option<&'static Builtin> {
    BUILTINS.iter().find(|b| b.name == name)
}

/// Parses a built-in into its sweep.
///
/// # Errors
/// Never for shipped built-ins (the test suite pins this); parse errors
/// would surface here if the embedded TOML were edited into invalidity.
pub fn sweep(builtin: &Builtin) -> Result<SweepSpec> {
    sweep_from_toml(builtin.toml)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_builtin_parses_and_expands() {
        for b in BUILTINS {
            let sweep = sweep(b).unwrap_or_else(|e| panic!("{} failed to parse: {e}", b.name));
            let specs =
                sweep.expand().unwrap_or_else(|e| panic!("{} failed to expand: {e}", b.name));
            assert!(!specs.is_empty(), "{} expands to nothing", b.name);
            assert_eq!(sweep.base.name, b.name, "file name key must match builtin name");
        }
    }

    #[test]
    fn default_grid_has_at_least_24_points() {
        let grid = find("paper-grid").unwrap();
        assert!(sweep(grid).unwrap().expand().unwrap().len() >= 24);
    }

    #[test]
    fn library_covers_the_paper_axes() {
        for name in [
            "baseline",
            "solar-sweep",
            "plane-attack",
            "spare-budget",
            "mega-constellation",
            "walker-network",
            "design-shootout",
            "design-catalog",
            "time-resolved",
            "disruption",
            "attack-opt",
            "traffic-scale",
            "percolation",
        ] {
            assert!(find(name).is_some(), "missing builtin {name}");
        }
        assert!(find("nope").is_none());
    }
}
