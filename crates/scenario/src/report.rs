//! Structured results of one scenario run, and their JSON-lines form.
//!
//! Field order in the JSON is part of the engine's contract: the
//! determinism tests assert byte-identical output across runs and thread
//! counts, so everything here emits through the insertion-ordered
//! [`crate::json::Json`] builder.

use crate::json::Json;

/// Design-stage outcome for one system.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignReport {
    /// Total satellites.
    pub sats: usize,
    /// Orbital planes (for Walker: summed across shells).
    pub planes: usize,
    /// Walker shells; equals `planes` for the SS design (one "shell" per
    /// plane at the shared altitude/inclination would be meaningless, so
    /// the SS designer's plane count is reported unchanged).
    pub shells: usize,
    /// Satellites per plane (SS street-of-coverage sizing; for Walker the
    /// constellation mean used by the survivability stage).
    pub sats_per_plane: usize,
    /// Common inclination \[deg\] (SS) or satellite-weighted mean shell
    /// inclination \[deg\] (Walker).
    pub inclination_deg: f64,
    /// Demand the design could not serve (SS only; 0 for Walker).
    pub unserved_demand: f64,
}

impl DesignReport {
    fn to_json(&self) -> Json {
        Json::obj()
            .uint("sats", self.sats as u64)
            .uint("planes", self.planes as u64)
            .uint("shells", self.shells as u64)
            .uint("sats_per_plane", self.sats_per_plane as u64)
            .num("inclination_deg", self.inclination_deg)
            .num("unserved_demand", self.unserved_demand)
            .build()
    }
}

/// Radiation-stage outcome for one system.
#[derive(Debug, Clone, PartialEq)]
pub struct FluenceReport {
    /// Median per-satellite daily electron fluence \[#/cm²/MeV\] (the
    /// Fig. 10a statistic).
    pub median_electron: f64,
    /// Median per-satellite daily proton fluence \[#/cm²/MeV\] (Fig. 10b).
    pub median_proton: f64,
    /// Mean per-plane daily electron fluence.
    pub mean_electron: f64,
    /// Mean per-plane daily proton fluence.
    pub mean_proton: f64,
    /// Solar-activity index in `[0, 1]` at the evaluation epoch.
    pub solar_activity: f64,
}

impl FluenceReport {
    fn to_json(&self) -> Json {
        Json::obj()
            .num("median_electron", self.median_electron)
            .num("median_proton", self.median_proton)
            .num("mean_electron", self.mean_electron)
            .num("mean_proton", self.mean_proton)
            .num("solar_activity", self.solar_activity)
            .build()
    }
}

/// Plane-loss attack outcome for one system.
#[derive(Debug, Clone, PartialEq)]
pub struct AttackReport {
    /// Planes destroyed.
    pub planes_lost: usize,
    /// Satellites destroyed with them.
    pub sats_lost: usize,
    /// Fraction of design capacity retained.
    pub capacity_retained: f64,
}

impl AttackReport {
    fn to_json(&self) -> Json {
        Json::obj()
            .uint("planes_lost", self.planes_lost as u64)
            .uint("sats_lost", self.sats_lost as u64)
            .num("capacity_retained", self.capacity_retained)
            .build()
    }
}

/// The outcome of an adversarial attack search (`attack.kind =
/// "optimized"`): the worst attack found, its objective value, and the
/// fixed-attack baseline with the same budget it is reported next to.
/// Present only for optimized attacks, so every fixed-attack scenario —
/// including all pre-search goldens — serializes exactly as before.
#[derive(Debug, Clone, PartialEq)]
pub struct AttackSearchReport {
    /// Objective token (`routed-fraction` / `connectivity` /
    /// `load-inflation`); lower values = more damage.
    pub objective: String,
    /// Candidate-set unit (`planes` / `sats`).
    pub unit: String,
    /// The configured budget (units the search may destroy).
    pub budget: usize,
    /// Random restarts the search ran.
    pub restarts: usize,
    /// Candidate evaluations the search loop requested (seen-cache hits
    /// included) — the count throughput is normalized by.
    pub candidates_scored: usize,
    /// Distinct candidate victim sets actually evaluated; the difference
    /// from `candidates_scored` is what the canonical-victim-set dedup
    /// saved.
    pub candidates_unique: usize,
    /// Objective value of the found worst-case attack.
    pub objective_value: f64,
    /// The same-budget fixed-attack baseline's registry name
    /// (`leading-planes` for a plane budget, `random-sats` for a
    /// satellite budget).
    pub baseline: String,
    /// Objective value of that baseline (never better than
    /// `objective_value`: the baseline seeds the search).
    pub baseline_value: f64,
    /// Objective value of the intact, unattacked network.
    pub intact_value: f64,
}

impl AttackSearchReport {
    fn to_json(&self) -> Json {
        Json::obj()
            .str("objective", &self.objective)
            .str("unit", &self.unit)
            .uint("budget", self.budget as u64)
            .uint("restarts", self.restarts as u64)
            .uint("candidates_scored", self.candidates_scored as u64)
            .uint("candidates_unique", self.candidates_unique as u64)
            .num("objective_value", self.objective_value)
            .str("baseline", &self.baseline)
            .num("baseline_value", self.baseline_value)
            .num("intact_value", self.intact_value)
            .build()
    }
}

/// Survivability normalized by the satellites the design spends — the
/// shootout's efficiency axis: a catalog constellation can post a higher
/// raw availability than a slim variant while buying each availability
/// point with far more hardware. Present only with
/// `survivability.per_satellite = true`, so every scenario without the
/// key — including all pre-shootout goldens — serializes exactly as
/// before.
#[derive(Debug, Clone, PartialEq)]
pub struct PerSatelliteReport {
    /// Designed satellites — the normalization denominator.
    pub sats: usize,
    /// Availability bought per thousand designed satellites.
    pub availability_per_ksat: f64,
    /// Vacancy slot-days per designed satellite.
    pub lost_slot_days_per_sat: f64,
    /// Up-front spares parked per designed satellite.
    pub spares_per_sat: f64,
}

impl PerSatelliteReport {
    fn to_json(&self) -> Json {
        Json::obj()
            .uint("sats", self.sats as u64)
            .num("availability_per_ksat", self.availability_per_ksat)
            .num("lost_slot_days_per_sat", self.lost_slot_days_per_sat)
            .num("spares_per_sat", self.spares_per_sat)
            .build()
    }
}

/// Survivability-stage outcome for one system.
#[derive(Debug, Clone, PartialEq)]
pub struct SurvivabilityOutcome {
    /// Time-averaged fraction of slots with a working satellite.
    pub availability: f64,
    /// Failures over the horizon.
    pub failures: usize,
    /// Replacements performed.
    pub replacements: usize,
    /// Slot-days lost to vacancies.
    pub lost_slot_days: f64,
    /// Spares consumed (counting resupply).
    pub spares_consumed: usize,
    /// Spares the policy parks up front.
    pub initial_spares: usize,
    /// Per-satellite normalization (only with
    /// `survivability.per_satellite`).
    pub per_satellite: Option<PerSatelliteReport>,
}

impl SurvivabilityOutcome {
    fn to_json(&self) -> Json {
        let mut obj = Json::obj()
            .num("availability", self.availability)
            .uint("failures", self.failures as u64)
            .uint("replacements", self.replacements as u64)
            .num("lost_slot_days", self.lost_slot_days)
            .uint("spares_consumed", self.spares_consumed as u64)
            .uint("initial_spares", self.initial_spares as u64);
        if let Some(p) = &self.per_satellite {
            obj = obj.field("per_satellite", p.to_json());
        }
        obj.build()
    }
}

/// Time-resolved networking metrics over the `network.time_grid_*` grid:
/// the whole topology + traffic stage evaluated per slot. Present only
/// when the grid has more than one slot, so single-instant scenarios —
/// including every pre-refactor golden — serialize exactly as before.
#[derive(Debug, Clone, PartialEq)]
pub struct TimeGridReport {
    /// Traffic grid slots evaluated.
    pub slots: usize,
    /// Slots whose ISL topology was connected.
    pub connected_slots: usize,
    /// Fewest flows routed in any slot.
    pub min_routed: usize,
    /// Mean flows routed per slot.
    pub mean_routed: f64,
    /// Maximum directed-link load over all slots.
    pub peak_link_load: f64,
    /// Mean (over slots) of the per-slot mean link load.
    pub mean_link_load: f64,
    /// Median delay over all routed (flow, slot) pairs \[ms\].
    pub delay_p50_ms: f64,
    /// 90th-percentile delay \[ms\].
    pub delay_p90_ms: f64,
    /// 99th-percentile delay \[ms\].
    pub delay_p99_ms: f64,
    /// Serving-pair handoffs summed over flows across consecutive
    /// routable slots.
    pub handoffs: usize,
}

impl TimeGridReport {
    fn to_json(&self) -> Json {
        Json::obj()
            .uint("slots", self.slots as u64)
            .uint("connected_slots", self.connected_slots as u64)
            .uint("min_routed", self.min_routed as u64)
            .num("mean_routed", self.mean_routed)
            .num("peak_link_load", self.peak_link_load)
            .num("mean_link_load", self.mean_link_load)
            .num("delay_p50_ms", self.delay_p50_ms)
            .num("delay_p90_ms", self.delay_p90_ms)
            .num("delay_p99_ms", self.delay_p99_ms)
            .uint("handoffs", self.handoffs as u64)
            .build()
    }
}

/// The population-scale traffic engine's outcome at the classic instant
/// (slot 0 of the traffic grid): gravity demand aggregated by
/// serving-satellite pair and assigned under per-link capacities.
/// Present only with `traffic.model = "gravity"`, so every sampled-flow
/// scenario — including all pre-engine goldens — serializes exactly as
/// before.
#[derive(Debug, Clone, PartialEq)]
pub struct ServedDemandReport {
    /// City-pair flows the gravity model emitted.
    pub flows: usize,
    /// Distinct serving-satellite pairs after aggregation (the routing
    /// problem's actual size).
    pub pairs: usize,
    /// Total offered rate (satellite-capacity units, normalized to
    /// `demand.total_demand_b`).
    pub offered: f64,
    /// Fraction of the offered rate delivered under link capacities.
    pub served_fraction: f64,
    /// Fraction dropped at saturated links.
    pub dropped_fraction: f64,
    /// Fraction with no serving satellite (or a disconnected pair).
    pub unattached_fraction: f64,
    /// Median utilization over loaded directed links.
    pub utilization_p50: f64,
    /// 90th-percentile link utilization.
    pub utilization_p90: f64,
    /// 99th-percentile link utilization.
    pub utilization_p99: f64,
    /// Peak link utilization (never exceeds 1 under a finite capacity).
    pub utilization_max: f64,
}

impl ServedDemandReport {
    fn to_json(&self) -> Json {
        Json::obj()
            .uint("flows", self.flows as u64)
            .uint("pairs", self.pairs as u64)
            .num("offered", self.offered)
            .num("served_fraction", self.served_fraction)
            .num("dropped_fraction", self.dropped_fraction)
            .num("unattached_fraction", self.unattached_fraction)
            .num("utilization_p50", self.utilization_p50)
            .num("utilization_p90", self.utilization_p90)
            .num("utilization_p99", self.utilization_p99)
            .num("utilization_max", self.utilization_max)
            .build()
    }
}

/// Degraded-network metrics over the same time grid as the intact
/// stage: every slot's snapshot masked by the attack's destroyed set
/// plus (when survivability is enabled) the outage timeline sampled at
/// the slot's mission fraction. Present only with
/// `network.with_outages`, so every scenario without the key — including
/// all pre-disruption goldens — serializes exactly as before.
#[derive(Debug, Clone, PartialEq)]
pub struct DegradedNetworkReport {
    /// Grid slots evaluated (same grid as the intact stage).
    pub slots: usize,
    /// Mean fraction of satellites in service over the slots.
    pub mean_alive_fraction: f64,
    /// Fewest satellites in service in any slot.
    pub min_alive: usize,
    /// Slots whose *surviving* subgraph was connected.
    pub connected_slots: usize,
    /// Fewest flows routed in any slot.
    pub min_routed: usize,
    /// Mean flows routed per slot.
    pub mean_routed: f64,
    /// Mean routed fraction: `mean_routed / flows offered`.
    pub routed_fraction: f64,
    /// Maximum directed-link load over all slots.
    pub peak_link_load: f64,
    /// Mean (over slots) of the per-slot mean link load.
    pub mean_link_load: f64,
    /// Load inflation vs the intact baseline: degraded `mean_link_load`
    /// over intact `mean_link_load` (surviving links carry the detoured
    /// traffic). Non-finite (serialized `null`) when the intact grid
    /// carries no load.
    pub load_inflation: f64,
    /// Median delay over routed (flow, slot) pairs \[ms\].
    pub delay_p50_ms: f64,
    /// 90th-percentile delay \[ms\].
    pub delay_p90_ms: f64,
    /// 99th-percentile delay \[ms\].
    pub delay_p99_ms: f64,
    /// Mean served-demand fraction over the degraded slots (only with
    /// `traffic.model = "gravity"`).
    pub served_fraction: Option<f64>,
    /// Worst per-slot served-demand fraction (only with `traffic.model =
    /// "gravity"`).
    pub min_served_fraction: Option<f64>,
}

impl DegradedNetworkReport {
    fn to_json(&self) -> Json {
        let mut obj = Json::obj()
            .uint("slots", self.slots as u64)
            .num("mean_alive_fraction", self.mean_alive_fraction)
            .uint("min_alive", self.min_alive as u64)
            .uint("connected_slots", self.connected_slots as u64)
            .uint("min_routed", self.min_routed as u64)
            .num("mean_routed", self.mean_routed)
            .num("routed_fraction", self.routed_fraction)
            .num("peak_link_load", self.peak_link_load)
            .num("mean_link_load", self.mean_link_load)
            .num("load_inflation", self.load_inflation)
            .num("delay_p50_ms", self.delay_p50_ms)
            .num("delay_p90_ms", self.delay_p90_ms)
            .num("delay_p99_ms", self.delay_p99_ms);
        if let Some(s) = self.served_fraction {
            obj = obj.num("served_fraction", s);
        }
        if let Some(s) = self.min_served_fraction {
            obj = obj.num("min_served_fraction", s);
        }
        obj.build()
    }
}

/// One attack model's percolation sweep, averaged over the network
/// stage's grid slots: the giant-component curve against loss fraction
/// plus its masking threshold (the critical loss fraction where the
/// damage stops hiding behind redundancy).
#[derive(Debug, Clone, PartialEq)]
pub struct PercolationModelReport {
    /// Removal-ordering name (`"leading-planes"`, `"random-sats"`, … or
    /// `"attack"` for the scenario's destroyed set).
    pub model: String,
    /// First loss fraction where the giant component falls more than
    /// `gap` below the surviving fraction (`null`: never detected).
    pub masking_threshold: Option<f64>,
    /// First loss fraction where this ordering's giant component falls
    /// more than `gap` below the random baseline's (`null`: never, or
    /// this *is* the random baseline).
    pub threshold_vs_random: Option<f64>,
    /// Loss fraction of the susceptibility peak (the phase transition).
    pub chi_peak_loss: f64,
    /// Susceptibility χ at its peak.
    pub chi_peak: f64,
    /// Mean giant-component fraction over the sweep (area under the
    /// percolation curve — the robustness scalar).
    pub mean_giant: f64,
    /// Giant-component fraction at each loss step (`steps + 1` points,
    /// 0 % to 100 % loss), slot-averaged.
    pub giant_curve: Vec<f64>,
}

impl PercolationModelReport {
    fn to_json(&self) -> Json {
        let opt = |x: Option<f64>| x.map_or(Json::Null, Json::Num);
        Json::obj()
            .str("model", &self.model)
            .field("masking_threshold", opt(self.masking_threshold))
            .field("threshold_vs_random", opt(self.threshold_vs_random))
            .num("chi_peak_loss", self.chi_peak_loss)
            .num("chi_peak", self.chi_peak)
            .num("mean_giant", self.mean_giant)
            .field(
                "giant_curve",
                Json::Arr(self.giant_curve.iter().map(|&g| Json::Num(g)).collect()),
            )
            .build()
    }
}

/// Percolation & robustness analytics over the intact per-slot
/// topologies: loss-fraction phase-transition sweeps per attack model,
/// the intact network's algebraic connectivity, and targeted-vs-random
/// masking thresholds. Present only with `network.percolation`, so every
/// scenario without the key serializes exactly as before.
#[derive(Debug, Clone, PartialEq)]
pub struct PercolationReport {
    /// Loss-fraction steps per sweep (curves have `steps + 1` points).
    pub steps: usize,
    /// Masking-threshold detection gap.
    pub gap: f64,
    /// Grid slots the curves were averaged over.
    pub slots: usize,
    /// Algebraic connectivity λ₂ of the intact topology, slot-averaged
    /// (0 when a slot's +grid is disconnected).
    pub lambda2_intact: f64,
    /// Loss fraction at each sweep step (shared x-axis of every model's
    /// `giant_curve`).
    pub loss_fraction: Vec<f64>,
    /// Per-ordering sweeps; the `"random-sats"` entry is the baseline
    /// the others' `threshold_vs_random` compares against.
    pub models: Vec<PercolationModelReport>,
}

impl PercolationReport {
    fn to_json(&self) -> Json {
        Json::obj()
            .uint("steps", self.steps as u64)
            .num("gap", self.gap)
            .uint("slots", self.slots as u64)
            .num("lambda2_intact", self.lambda2_intact)
            .field(
                "loss_fraction",
                Json::Arr(self.loss_fraction.iter().map(|&f| Json::Num(f)).collect()),
            )
            .field("models", Json::Arr(self.models.iter().map(|m| m.to_json()).collect()))
            .build()
    }
}

/// Networking-stage outcome for one system.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkReport {
    /// Flows routed at the snapshot.
    pub routed: usize,
    /// Flows with no route.
    pub unrouted: usize,
    /// Mean latency stretch of routed flows.
    pub mean_stretch: f64,
    /// Mean hop count of routed flows.
    pub mean_hops: f64,
    /// Maximum directed-link load.
    pub max_link_load: f64,
    /// Mean load over loaded links.
    pub mean_link_load: f64,
    /// Slots (of the time-expanded reference route) with a route.
    pub reachable_slots: usize,
    /// Slots evaluated.
    pub slots: usize,
    /// Path handoffs across slots.
    pub handoffs: usize,
    /// Mean delay over reachable slots \[ms\].
    pub mean_delay_ms: f64,
    /// Population-scale served-demand metrics (only with `traffic.model =
    /// "gravity"`).
    pub served: Option<ServedDemandReport>,
    /// Time-resolved metrics (only for a multi-slot `network.time_grid`).
    pub time_grid: Option<TimeGridReport>,
    /// Degraded-network metrics (only with `network.with_outages`).
    pub degraded: Option<DegradedNetworkReport>,
    /// Percolation analytics (only with `network.percolation`).
    pub percolation: Option<PercolationReport>,
}

impl NetworkReport {
    fn to_json(&self) -> Json {
        let mut obj = Json::obj()
            .uint("routed", self.routed as u64)
            .uint("unrouted", self.unrouted as u64)
            .num("mean_stretch", self.mean_stretch)
            .num("mean_hops", self.mean_hops)
            .num("max_link_load", self.max_link_load)
            .num("mean_link_load", self.mean_link_load)
            .uint("reachable_slots", self.reachable_slots as u64)
            .uint("slots", self.slots as u64)
            .uint("handoffs", self.handoffs as u64)
            .num("mean_delay_ms", self.mean_delay_ms);
        if let Some(s) = &self.served {
            obj = obj.field("served", s.to_json());
        }
        if let Some(tg) = &self.time_grid {
            obj = obj.field("time_grid", tg.to_json());
        }
        if let Some(d) = &self.degraded {
            obj = obj.field("degraded", d.to_json());
        }
        if let Some(p) = &self.percolation {
            obj = obj.field("percolation", p.to_json());
        }
        obj.build()
    }
}

/// Everything the pipeline produced for one system.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemReport {
    /// Design stage (always present).
    pub design: DesignReport,
    /// Radiation stage (if enabled).
    pub fluence: Option<FluenceReport>,
    /// Attack stage (if `planes_lost > 0`).
    pub attack: Option<AttackReport>,
    /// Attack-search outcome (only for `attack.kind = "optimized"`).
    pub attack_search: Option<AttackSearchReport>,
    /// Survivability stage (if enabled).
    pub survivability: Option<SurvivabilityOutcome>,
    /// Networking stage (if enabled and the system has satellites).
    pub network: Option<NetworkReport>,
}

impl SystemReport {
    fn to_json(&self) -> Json {
        let mut obj = Json::obj().field("design", self.design.to_json());
        if let Some(f) = &self.fluence {
            obj = obj.field("fluence", f.to_json());
        }
        if let Some(a) = &self.attack {
            obj = obj.field("attack", a.to_json());
        }
        if let Some(s) = &self.attack_search {
            obj = obj.field("attack_search", s.to_json());
        }
        if let Some(s) = &self.survivability {
            obj = obj.field("survivability", s.to_json());
        }
        if let Some(n) = &self.network {
            obj = obj.field("network", n.to_json());
        }
        obj.build()
    }
}

/// One designed system's results, tagged with its registry name.
#[derive(Debug, Clone, PartialEq)]
pub struct NamedSystemReport {
    /// The designer's registry name (`"ss"`, `"wd"`, `"rgt"`, `"slim"`,
    /// `"starlink"`) — also the system's JSON key in the report line.
    pub system: String,
    /// The system's per-stage results.
    pub report: SystemReport,
}

/// The complete result of one scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioReport {
    /// Scenario name (base name plus sweep coordinates).
    pub name: String,
    /// The seed the scenario ran with.
    pub seed: u64,
    /// Total bandwidth demand B the demand grid was normalized to.
    pub total_demand_b: f64,
    /// The raw grid multiplier `B / grid.total()` the designers consumed
    /// (the evaluate-API multiplier).
    pub demand_multiplier: f64,
    /// Solar-activity token (`cycle24` / `max` / `min`).
    pub solar: String,
    /// Evaluation epoch \[Julian date\] of the radiation stage.
    pub epoch_jd: f64,
    /// Per-system results, always in **registry order** (`ss`, `wd`,
    /// `rgt`, `slim`, `starlink`) regardless of how the spec listed its
    /// kinds — so the JSON bytes are a pure function of the parameter
    /// point.
    pub systems: Vec<NamedSystemReport>,
}

impl ScenarioReport {
    /// The results of the system named `name`, if it was designed.
    pub fn system(&self, name: &str) -> Option<&SystemReport> {
        self.systems.iter().find(|s| s.system == name).map(|s| &s.report)
    }

    /// One JSON-lines record (no trailing newline). Each system is one
    /// top-level field keyed by its registry name, in registry order —
    /// byte-compatible with the pre-`Designer` fixed `ss`/`wd` layout.
    pub fn to_json_line(&self) -> String {
        let mut obj = Json::obj()
            .str("name", &self.name)
            .uint("seed", self.seed)
            .num("total_demand_b", self.total_demand_b)
            .num("demand_multiplier", self.demand_multiplier)
            .str("solar", &self.solar)
            .num("epoch_jd", self.epoch_jd);
        for sys in &self.systems {
            obj = obj.field(&sys.system, sys.report.to_json());
        }
        obj.build().to_string_compact()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_line_shape() {
        let report = ScenarioReport {
            name: "t".to_string(),
            seed: 1,
            total_demand_b: 10.0,
            demand_multiplier: 0.05,
            solar: "cycle24".to_string(),
            epoch_jd: 2_456_444.5,
            systems: vec![NamedSystemReport {
                system: "ss".to_string(),
                report: SystemReport {
                    design: DesignReport {
                        sats: 100,
                        planes: 4,
                        shells: 4,
                        sats_per_plane: 25,
                        inclination_deg: 97.6,
                        unserved_demand: 0.0,
                    },
                    fluence: None,
                    attack: None,
                    attack_search: None,
                    survivability: None,
                    network: None,
                },
            }],
        };
        let line = report.to_json_line();
        assert!(line.starts_with(r#"{"name":"t","seed":1,"total_demand_b":10.0"#), "{line}");
        assert!(line.contains(r#""ss":{"design":{"sats":100"#), "{line}");
        assert!(!line.contains("wd"), "{line}");
        assert!(!line.contains('\n'));
        assert!(report.system("ss").is_some());
        assert!(report.system("wd").is_none());
    }
}
