//! Scenario execution: the end-to-end pipeline for one spec, and a
//! thread-pooled runner for sweeps.
//!
//! Execution is a pure function of the spec: demand synthesis, both
//! designers, the fluence integrals, and the survivability simulation are
//! all seeded, so `execute_scenario` called twice returns identical
//! reports — and the parallel [`Runner`] preserves that by collecting
//! results into slot `i` for scenario `i` regardless of which worker ran
//! it. JSON-lines output is therefore byte-identical across runs **and**
//! across thread counts.
//!
//! Stage plumbing (all through the existing crates, not re-implemented):
//! `ssplane_demand` (grid) → `ssplane_core::designer` /
//! `walker_baseline` → `ssplane_core::evaluate` fluence sampling over
//! `ssplane_radiation` → `ssplane_lsn::{survivability, traffic,
//! routing}`.

use crate::error::{Result, ScenarioError};
use crate::report::{
    AttackReport, DesignReport, FluenceReport, NetworkReport, ScenarioReport, SurvivabilityOutcome,
    SystemReport,
};
use crate::spec::{DesignKind, ScenarioSpec};
use crate::sweep::SweepSpec;
use ssplane_astro::geo::GeoPoint;
use ssplane_astro::kepler::OrbitalElements;
use ssplane_astro::time::Epoch;
use ssplane_core::designer::{design_ss_constellation, SsConstellation};
use ssplane_core::evaluate::{plane_fluence_samples, weighted_median_fluence};
use ssplane_core::walker_baseline::{design_walker_constellation, WalkerConstellation};
use ssplane_demand::grid::LatTodGrid;
use ssplane_demand::DemandModel;
use ssplane_lsn::routing::route_over_time;
use ssplane_lsn::survivability::simulate;
use ssplane_lsn::topology::{Constellation, GridTopologyConfig, Topology};
use ssplane_lsn::traffic::{assign_traffic, sample_flows};
use ssplane_radiation::fluence::DailyFluence;
use ssplane_radiation::RadiationEnvironment;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// The synthetic demand model, built once per process: it is
/// parameterless and deterministic (every scenario sees the identical
/// model), and synthesizing the 0.5° population grid is by far the most
/// expensive per-scenario fixed cost, so sweeps share it.
fn shared_demand_model() -> &'static DemandModel {
    static MODEL: OnceLock<DemandModel> = OnceLock::new();
    MODEL.get_or_init(|| {
        DemandModel::synthetic_default().expect("default demand configuration is valid")
    })
}

/// One orbital plane prepared for the attack/survivability stages.
struct PlaneGroup {
    /// Satellites in the plane.
    sats: usize,
    /// Index into the fluence-evaluation groups this plane's dose comes
    /// from (its own index for SS; the owning shell's index for Walker).
    eval_idx: usize,
}

/// A system's radiation-stage inputs: the fluence-evaluation groups (the
/// exact Fig. 10 grouping, for numerical parity with the figure
/// pipeline) plus the per-plane expansion attacks and spares act on.
struct SystemGroups {
    /// `(representative elements, satellites)` per evaluation group —
    /// one per SS plane, one per Walker *shell*.
    eval: Vec<(OrbitalElements, usize)>,
    /// The real orbital planes.
    planes: Vec<PlaneGroup>,
}

/// Builds the groups of an SS constellation: planes are both the
/// evaluation unit and the attack unit.
fn ss_groups(ss: &SsConstellation, epoch: Epoch) -> Result<SystemGroups> {
    let eval: Vec<(OrbitalElements, usize)> = ss
        .planes
        .iter()
        .map(|p| Ok((p.orbit.elements_at(epoch, 0.0)?, p.n_sats)))
        .collect::<Result<_>>()?;
    let planes = ss
        .planes
        .iter()
        .enumerate()
        .map(|(i, p)| PlaneGroup { sats: p.n_sats, eval_idx: i })
        .collect();
    Ok(SystemGroups { eval, planes })
}

/// Builds the groups of a Walker constellation: shells are the evaluation
/// unit (satellites in a shell share their daily environment), expanded
/// into the shell's planes so plane-loss attacks and per-plane spare
/// budgets act on real planes.
fn wd_groups(wd: &WalkerConstellation) -> Result<SystemGroups> {
    let mut eval = Vec::with_capacity(wd.shells.len());
    let mut planes = Vec::new();
    for (s, shell) in wd.shells.iter().enumerate() {
        let elements = OrbitalElements::circular(shell.altitude_km, shell.inclination, 0.0, 0.0)
            .map_err(ssplane_core::CoreError::from)?;
        eval.push((elements, shell.n_sats));
        let n_planes = shell.planes.max(1);
        let base = shell.n_sats / n_planes;
        let extra = shell.n_sats % n_planes;
        for k in 0..n_planes {
            planes.push(PlaneGroup { sats: base + usize::from(k < extra), eval_idx: s });
        }
    }
    Ok(SystemGroups { eval, planes })
}

/// The indices removed by a `planes_lost`-plane attack on `n` planes:
/// evenly strided so the loss spreads across the constellation.
fn attacked_indices(n: usize, planes_lost: usize) -> Vec<usize> {
    let lost = planes_lost.min(n);
    if lost == 0 {
        return Vec::new();
    }
    (0..lost).map(|k| k * n / lost).collect()
}

/// Runs every post-design stage for one system.
fn system_report(
    spec: &ScenarioSpec,
    groups: &SystemGroups,
    design: DesignReport,
    env: &RadiationEnvironment,
    epoch: Epoch,
    fluence_stage: bool,
) -> Result<SystemReport> {
    let mut report =
        SystemReport { design, fluence: None, attack: None, survivability: None, network: None };

    // Plane-loss attack: pure bookkeeping over plane/satellite counts, so
    // it runs (and reports capacity retention) even in design-only
    // scenarios with the radiation stage disabled.
    let mut surviving: Vec<(usize, &PlaneGroup)> = groups.planes.iter().enumerate().collect();
    if spec.attack.planes_lost > 0 && !groups.planes.is_empty() {
        let hit = attacked_indices(groups.planes.len(), spec.attack.planes_lost);
        let sats_lost: usize = hit.iter().map(|&i| groups.planes[i].sats).sum();
        let total: usize = groups.planes.iter().map(|g| g.sats).sum();
        surviving.retain(|(i, _)| !hit.contains(i));
        report.attack = Some(AttackReport {
            planes_lost: hit.len(),
            sats_lost,
            capacity_retained: if total == 0 { 0.0 } else { 1.0 - sats_lost as f64 / total as f64 },
        });
    }

    if !fluence_stage || groups.eval.is_empty() {
        return Ok(report);
    }

    // The fig10-parity statistic: `phases` samples per evaluation group,
    // weighted median across the constellation.
    let phases = spec.radiation.phases.max(1);
    let samples = plane_fluence_samples(&groups.eval, env, epoch, phases, spec.radiation.step_s)?;
    let median = weighted_median_fluence(&samples);

    // Per-evaluation-group dose (mean over its phase samples); planes
    // inherit the dose of their group.
    let eval_doses: Vec<DailyFluence> = samples
        .chunks(phases)
        .map(|chunk| {
            let n = chunk.len() as f64;
            DailyFluence {
                electron: chunk.iter().map(|(f, _)| f.electron).sum::<f64>() / n,
                proton: chunk.iter().map(|(f, _)| f.proton).sum::<f64>() / n,
            }
        })
        .collect();
    let plane_doses: Vec<DailyFluence> =
        groups.planes.iter().map(|p| eval_doses[p.eval_idx]).collect();
    let mean = DailyFluence {
        electron: plane_doses.iter().map(|d| d.electron).sum::<f64>()
            / plane_doses.len().max(1) as f64,
        proton: plane_doses.iter().map(|d| d.proton).sum::<f64>() / plane_doses.len().max(1) as f64,
    };
    report.fluence = Some(FluenceReport {
        median_electron: median.electron,
        median_proton: median.proton,
        mean_electron: mean.electron,
        mean_proton: mean.proton,
        solar_activity: env.solar.activity(epoch),
    });

    if spec.survivability.enabled {
        if surviving.is_empty() {
            // The attack wiped out every plane: that is an availability-0
            // outcome, not a missing stage — a sweep plotting
            // availability vs planes_lost must see its extreme point.
            // `lost_slot_days` counts vacancy-days among *surviving*
            // slots (the simulation's metric), so it is 0 here, exactly
            // as attack-destroyed slots are excluded in partial attacks;
            // the destroyed capacity itself is the attack report's
            // `sats_lost` / `capacity_retained`.
            report.survivability = Some(SurvivabilityOutcome {
                availability: 0.0,
                failures: 0,
                replacements: 0,
                lost_slot_days: 0.0,
                spares_consumed: 0,
                initial_spares: 0,
            });
        } else {
            let doses: Vec<DailyFluence> = surviving.iter().map(|&(i, _)| plane_doses[i]).collect();
            let sats: usize = surviving.iter().map(|(_, g)| g.sats).sum();
            // Round to nearest: flooring the mean would silently drop up
            // to one satellite per plane from the simulated fleet (a ~10%
            // undercount for small uneven Walker shells).
            let sats_per_plane = ((sats as f64 / surviving.len() as f64).round() as usize).max(1);
            let sim = simulate(
                &doses,
                sats_per_plane,
                &spec.survivability.failure,
                &spec.survivability.policy,
                spec.survivability.sim_config(spec.seed),
            )?;
            report.survivability = Some(SurvivabilityOutcome {
                availability: sim.availability,
                failures: sim.failures,
                replacements: sim.replacements,
                lost_slot_days: sim.lost_slot_days,
                spares_consumed: sim.spares_consumed,
                initial_spares: spec.survivability.policy.total_spares(surviving.len()),
            });
        }
    }
    Ok(report)
}

/// Runs the networking stage over a designed SS constellation.
fn network_report(
    spec: &ScenarioSpec,
    model: &DemandModel,
    ss: &SsConstellation,
    epoch: Epoch,
) -> Result<NetworkReport> {
    let constellation = Constellation::from_ss(epoch, ss)?;
    let topo_config = GridTopologyConfig {
        max_range_km: spec.network.max_range_km,
        ..GridTopologyConfig::default()
    };
    let min_elev = spec.network.min_elevation_deg.to_radians();
    let t = epoch + spec.network.utc_hour * 3600.0;
    let topology = Topology::plus_grid(&constellation, t, topo_config)?;
    // Flow endpoints are demand-weighted; the stream is derived from the
    // scenario seed so sweeps decorrelate.
    let flows = sample_flows(
        model,
        spec.network.utc_hour,
        spec.network.n_flows,
        spec.seed.wrapping_add(0x9E37_79B9),
    );
    let traffic = assign_traffic(&constellation, &topology, &flows, t, min_elev)?;

    // The reference pair of every routing walkthrough in this repo:
    // New York -> London across the configured slots.
    let src = GeoPoint::from_degrees(40.7, -74.0);
    let dst = GeoPoint::from_degrees(51.5, -0.1);
    let routes = route_over_time(
        &constellation,
        src,
        dst,
        t,
        spec.network.slots.max(1),
        spec.network.slot_s,
        min_elev,
        topo_config,
    )?;
    Ok(NetworkReport {
        routed: traffic.routed,
        unrouted: traffic.unrouted,
        mean_stretch: traffic.mean_stretch,
        mean_hops: traffic.mean_hops,
        max_link_load: traffic.max_link_load(),
        mean_link_load: traffic.mean_link_load(),
        reachable_slots: routes.reachable_slots(),
        slots: routes.routes.len(),
        handoffs: routes.handoffs(),
        mean_delay_ms: routes.mean_delay_ms(),
    })
}

/// Executes one scenario end-to-end.
///
/// # Errors
/// Validation failures and any stage error, tagged with the crate that
/// produced it.
pub fn execute_scenario(spec: &ScenarioSpec) -> Result<ScenarioReport> {
    spec.validate()?;

    // Demand stage.
    let model = shared_demand_model();
    let grid = LatTodGrid::from_model(model, spec.demand.lat_bins, spec.demand.tod_bins)?;
    let total = grid.total();
    if !total.is_finite() || total <= 0.0 {
        return Err(ScenarioError::bad_value(
            "demand.grid",
            "0",
            "a demand grid with positive total",
        ));
    }
    let multiplier = spec.demand.total_demand_b / total;
    let demand = grid.scaled(multiplier);

    let env = RadiationEnvironment::default();
    let epoch = spec.radiation.epoch();

    // Design + downstream stages per system.
    let mut ss_report = None;
    if matches!(spec.design.kind, DesignKind::SsPlane | DesignKind::Both) {
        let ss = design_ss_constellation(&demand, spec.design.ss)?;
        let groups = ss_groups(&ss, epoch)?;
        let design = DesignReport {
            sats: ss.total_sats(),
            planes: ss.planes.len(),
            shells: ss.planes.len(),
            sats_per_plane: ss.sats_per_plane,
            inclination_deg: ss.inclination().map_or(0.0, f64::to_degrees),
            unserved_demand: ss.unserved_demand,
        };
        let mut report = system_report(spec, &groups, design, &env, epoch, spec.radiation.enabled)?;
        if spec.network.enabled && !ss.planes.is_empty() {
            report.network = Some(network_report(spec, model, &ss, epoch)?);
        }
        ss_report = Some(report);
    }

    let mut wd_report = None;
    if matches!(spec.design.kind, DesignKind::Walker | DesignKind::Both) {
        let wd = design_walker_constellation(&demand, spec.design.wd.clone())?;
        let groups = wd_groups(&wd)?;
        let total_planes = groups.planes.len();
        let total_sats = wd.total_sats();
        let inclination_deg = if total_sats == 0 {
            0.0
        } else {
            wd.shells.iter().map(|s| s.inclination.to_degrees() * s.n_sats as f64).sum::<f64>()
                / total_sats as f64
        };
        let design = DesignReport {
            sats: total_sats,
            planes: total_planes,
            shells: wd.shells.len(),
            sats_per_plane: total_sats.checked_div(total_planes).unwrap_or(0),
            inclination_deg,
            unserved_demand: 0.0,
        };
        wd_report =
            Some(system_report(spec, &groups, design, &env, epoch, spec.radiation.enabled)?);
    }

    Ok(ScenarioReport {
        name: spec.name.clone(),
        seed: spec.seed,
        total_demand_b: spec.demand.total_demand_b,
        demand_multiplier: multiplier,
        solar: spec.radiation.solar.as_str().to_string(),
        epoch_jd: epoch.julian_date(),
        ss: ss_report,
        wd: wd_report,
    })
}

/// A parallel scenario runner.
#[derive(Debug, Clone, Copy, Default)]
pub struct Runner {
    /// Worker threads; `0` (the default) uses the machine's available
    /// parallelism.
    pub threads: usize,
}

/// The result of running a sweep: per-scenario outcomes in **scenario
/// order** (independent of scheduling), plus accessors for the JSON-lines
/// and summary forms.
#[derive(Debug)]
pub struct SweepOutcome {
    /// The expanded scenario names, index-aligned with `reports` — kept
    /// so a *failed* point is still identifiable in the output (its
    /// error record carries the name even though no report exists).
    pub names: Vec<String>,
    /// One outcome per expanded scenario, index-aligned with the
    /// expansion order.
    pub reports: Vec<Result<ScenarioReport>>,
}

impl SweepOutcome {
    /// The JSON-lines serialization: one line per scenario, in scenario
    /// order; failed scenarios serialize as `{"name": ..., "error": ...}`
    /// records so a sweep with one infeasible point still reports the
    /// other points — and the failing grid point stays identifiable.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for (i, r) in self.reports.iter().enumerate() {
            match r {
                Ok(report) => out.push_str(&report.to_json_line()),
                Err(e) => {
                    out.push_str(
                        &crate::json::Json::obj()
                            .str("name", self.names.get(i).map_or("", String::as_str))
                            .str("error", &e.to_string())
                            .build()
                            .to_string_compact(),
                    );
                }
            }
            out.push('\n');
        }
        out
    }

    /// Scenarios that completed.
    pub fn ok_count(&self) -> usize {
        self.reports.iter().filter(|r| r.is_ok()).count()
    }

    /// A human-readable aggregate summary (one row per scenario).
    pub fn summary(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<52} {:>8} {:>8} {:>10} {:>10}\n",
            "scenario", "SS sats", "WD sats", "SS avail", "WD avail"
        ));
        for (i, r) in self.reports.iter().enumerate() {
            match r {
                Ok(rep) => {
                    let sats = |s: &Option<crate::report::SystemReport>| {
                        s.as_ref().map_or("-".to_string(), |x| x.design.sats.to_string())
                    };
                    let avail = |s: &Option<crate::report::SystemReport>| {
                        s.as_ref()
                            .and_then(|x| x.survivability.as_ref())
                            .map_or("-".to_string(), |v| format!("{:.4}", v.availability))
                    };
                    out.push_str(&format!(
                        "{:<52} {:>8} {:>8} {:>10} {:>10}\n",
                        rep.name,
                        sats(&rep.ss),
                        sats(&rep.wd),
                        avail(&rep.ss),
                        avail(&rep.wd)
                    ));
                }
                Err(e) => out.push_str(&format!(
                    "{:<52} error: {e}\n",
                    self.names.get(i).map_or("?", String::as_str)
                )),
            }
        }
        out
    }
}

impl Runner {
    /// A runner using `threads` workers (`0` = auto).
    pub fn with_threads(threads: usize) -> Self {
        Runner { threads }
    }

    fn worker_count(&self, jobs: usize) -> usize {
        let auto = std::thread::available_parallelism().map_or(4, std::num::NonZeroUsize::get);
        let n = if self.threads == 0 { auto } else { self.threads };
        n.clamp(1, jobs.max(1))
    }

    /// Runs every spec, in parallel, returning outcomes in spec order.
    pub fn run_specs(&self, specs: &[ScenarioSpec]) -> SweepOutcome {
        let n = specs.len();
        let names: Vec<String> = specs.iter().map(|s| s.name.clone()).collect();
        let workers = self.worker_count(n);
        if workers <= 1 || n <= 1 {
            return SweepOutcome { names, reports: specs.iter().map(execute_scenario).collect() };
        }
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<Result<ScenarioReport>>>> =
            (0..n).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let outcome = execute_scenario(&specs[i]);
                    *slots[i].lock().expect("runner slot poisoned") = Some(outcome);
                });
            }
        });
        SweepOutcome {
            names,
            reports: slots
                .into_iter()
                .map(|slot| {
                    slot.into_inner()
                        .expect("runner slot poisoned")
                        .expect("every index claimed exactly once")
                })
                .collect(),
        }
    }

    /// Expands and runs a sweep.
    ///
    /// # Errors
    /// Propagates expansion failure (unknown parameters, invalid specs);
    /// per-scenario execution failures are reported per line instead.
    pub fn run_sweep(&self, sweep: &SweepSpec) -> Result<SweepOutcome> {
        let specs = sweep.expand()?;
        Ok(self.run_specs(&specs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ScenarioSpec;

    fn tiny_spec() -> ScenarioSpec {
        let mut spec = ScenarioSpec::named("tiny");
        spec.demand.total_demand_b = 10.0;
        spec.radiation.phases = 1;
        spec.radiation.step_s = 300.0;
        spec.survivability.horizon_years = 2.0;
        spec
    }

    #[test]
    fn execute_produces_both_systems() {
        let report = execute_scenario(&tiny_spec()).unwrap();
        let ss = report.ss.expect("ss present");
        let wd = report.wd.expect("wd present");
        assert!(ss.design.sats > 0);
        assert!(wd.design.sats > ss.design.sats, "paper's headline: SS smaller");
        let ssf = ss.fluence.expect("fluence on");
        let wdf = wd.fluence.expect("fluence on");
        assert!(ssf.median_proton < wdf.median_proton, "SS sees fewer protons");
        assert!(ss.survivability.is_some());
        assert!(wd.survivability.is_some());
        assert!(ss.network.is_none(), "network off by default");
    }

    #[test]
    fn execution_is_deterministic() {
        let spec = tiny_spec();
        let a = execute_scenario(&spec).unwrap();
        let b = execute_scenario(&spec).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.to_json_line(), b.to_json_line());
    }

    #[test]
    fn attack_reduces_capacity_and_is_reported() {
        let mut spec = tiny_spec();
        spec.design.kind = crate::spec::DesignKind::SsPlane;
        spec.attack.planes_lost = 2;
        let report = execute_scenario(&spec).unwrap();
        let ss = report.ss.unwrap();
        let attack = ss.attack.expect("attack stage ran");
        assert!(attack.planes_lost <= 2);
        assert!(attack.capacity_retained < 1.0);
        assert!(attack.sats_lost > 0);
    }

    #[test]
    fn attacked_indices_spread() {
        assert_eq!(attacked_indices(10, 0), Vec::<usize>::new());
        assert_eq!(attacked_indices(10, 2), vec![0, 5]);
        assert_eq!(attacked_indices(4, 9), vec![0, 1, 2, 3]);
        let idx = attacked_indices(9, 3);
        assert_eq!(idx.len(), 3);
        assert!(idx.windows(2).all(|w| w[1] > w[0]));
    }

    #[test]
    fn total_wipeout_reports_zero_availability() {
        let mut spec = tiny_spec();
        spec.design.kind = crate::spec::DesignKind::SsPlane;
        spec.attack.planes_lost = 100_000;
        let ss = execute_scenario(&spec).unwrap().ss.unwrap();
        let attack = ss.attack.expect("attack ran");
        assert_eq!(attack.capacity_retained, 0.0);
        let surv = ss.survivability.expect("wipeout is an availability-0 outcome, not a gap");
        assert_eq!(surv.availability, 0.0);
        // Vacancy-days cover surviving slots only (none here) — the
        // destroyed capacity lives in the attack report.
        assert_eq!(surv.lost_slot_days, 0.0);
    }

    #[test]
    fn attack_runs_without_the_radiation_stage() {
        // Capacity bookkeeping needs no fluence data: a design-only
        // scenario still reports the attack outcome.
        let mut spec = tiny_spec();
        spec.radiation.enabled = false;
        spec.survivability.enabled = false;
        spec.attack.planes_lost = 2;
        let ss = execute_scenario(&spec).unwrap().ss.unwrap();
        assert!(ss.fluence.is_none());
        let attack = ss.attack.expect("attack must run in design-only scenarios");
        assert!(attack.capacity_retained < 1.0);
    }

    #[test]
    fn design_only_scenario_skips_downstream() {
        let mut spec = tiny_spec();
        spec.radiation.enabled = false;
        spec.survivability.enabled = false;
        let report = execute_scenario(&spec).unwrap();
        let ss = report.ss.unwrap();
        assert!(ss.fluence.is_none());
        assert!(ss.survivability.is_none());
    }
}
