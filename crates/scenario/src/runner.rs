//! Scenario execution: the end-to-end pipeline for one spec, and a
//! thread-pooled runner for sweeps.
//!
//! Execution is a pure function of the spec: demand synthesis, every
//! designer, the fluence integrals, and the survivability simulation are
//! all seeded, so [`execute_scenario`] called twice returns identical
//! reports — and the parallel [`Runner`] preserves that by collecting
//! results into slot `i` for scenario `i` regardless of which worker ran
//! it. JSON-lines output is therefore byte-identical across runs **and**
//! across thread counts. Wall-clock stage timings are collected on the
//! side (see [`ScenarioTimings`]) and never enter the report.
//!
//! The pipeline is **design-generic**: every system a scenario selects
//! (`design.kinds`) is produced by a [`Designer`] from the
//! `ssplane-core` registry, and one shared sequence of stages — design →
//! attack → fluence → survivability → network — runs over the resulting
//! [`DesignedSystem`]s in registry order. Stage plumbing goes through the
//! existing crates, not re-implementations: `ssplane_demand` (grid) →
//! `ssplane_core::system` designers → `ssplane_core::evaluate` fluence
//! sampling over `ssplane_radiation` → `ssplane_lsn::{survivability,
//! traffic, routing}`.

use crate::error::{Result, ScenarioError};
use crate::report::{
    AttackReport, AttackSearchReport, DegradedNetworkReport, DesignReport, FluenceReport,
    NamedSystemReport, NetworkReport, PerSatelliteReport, PercolationModelReport,
    PercolationReport, ScenarioReport, ServedDemandReport, SurvivabilityOutcome, SystemReport,
    TimeGridReport,
};
use crate::spec::{AttackKind, AttackUnit, DesignSpec, ScenarioSpec, TrafficModel};
use crate::sweep::SweepSpec;
use ssplane_astro::geo::GeoPoint;
use ssplane_astro::time::Epoch;
use ssplane_core::evaluate::{plane_fluence_samples, weighted_median_fluence};
use ssplane_core::system::{
    DesignParams, DesignSummary, DesignedSystem, Designer, RgtDesigner, SlimDesigner, SsDesigner,
    StarlinkDesigner, WalkerDesigner,
};
use ssplane_demand::gravity::{gravity_flows, grid_demand_total, GravityConfig};
use ssplane_demand::grid::LatTodGrid;
use ssplane_demand::DemandModel;
use ssplane_lsn::disruption::{strided_plane_indices, AttackModel, AttackTarget, OutageTimeline};
use ssplane_lsn::optimizer::{optimize_attack, DegradedEvaluator};
use ssplane_lsn::percolation::{
    algebraic_connectivity, percolation_sweep, plane_spread_ordering, priority_ordering,
    random_ordering, Lambda2Config, PercolationCurve,
};
use ssplane_lsn::routing::{route_ground_to_ground, route_over_time, Route, TimeExpandedRoutes};
use ssplane_lsn::snapshot::{time_grid, SnapshotSeries};
use ssplane_lsn::survivability::{outage_timeline, simulate_process};
use ssplane_lsn::topology::{Constellation, GridTopologyConfig, SatId};
use ssplane_lsn::traffic::{sample_flows, Flow, TrafficReport};
use ssplane_lsn::traffic_engine::{CapacityConfig, TrafficWorkload};
use ssplane_lsn::LsnError;
use ssplane_radiation::fluence::DailyFluence;
use ssplane_radiation::RadiationEnvironment;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Salt XORed into the scenario seed for the degraded-network outage
/// timeline, so its realization is an explicitly independent stream from
/// the aggregate survivability simulation's.
const OUTAGE_SEED_SALT: u64 = 0x4F55_5441_4745;

/// Salt XORed into the scenario seed for the percolation stage's
/// random-loss baseline ordering, so its stream is independent of every
/// other consumer of the scenario seed.
const PERCOLATION_SEED_SALT: u64 = 0x5045_5243_4F4C;

/// Salt XORed into the scenario seed for the gravity workload's pair
/// sampling, so the population-scale demand stream is independent of the
/// flow sample's and the outage timeline's.
const TRAFFIC_SEED_SALT: u64 = 0x0054_5241_4646_4943;

/// The synthetic demand model for a given `demand.seed`, built once per
/// process and shared: synthesizing the 0.5° population grid is by far
/// the most expensive per-scenario fixed cost, and it depends on nothing
/// but the seed — so sweeps whose points agree on the seed (the common
/// case) share one synthesis, while a `demand.seed` axis still gets a
/// distinct model per value.
///
/// Entries live for the process (a few MB per distinct seed; a
/// `demand.seed` axis re-reads its models on every rerun of the sweep),
/// and the lock is held across synthesis — deliberately, so concurrent
/// workers wanting the *same* new seed do the work once rather than
/// racing on it.
fn shared_demand_model(seed: u64) -> Arc<DemandModel> {
    static CACHE: OnceLock<Mutex<BTreeMap<u64, Arc<DemandModel>>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(BTreeMap::new()));
    let mut models = cache.lock().expect("demand cache poisoned");
    models
        .entry(seed)
        .or_insert_with(|| {
            Arc::new(
                DemandModel::synthetic_seeded(seed)
                    .expect("default-resolution synthesis is valid for every seed"),
            )
        })
        .clone()
}

/// The designer registry: the [`Designer`] a registry name (an entry of
/// `ssplane_core::system::DESIGNER_REGISTRY`, as validated by
/// [`crate::spec::resolve_design_kind`]) selects, configured from the
/// spec. The fallthrough arm is `ss` — spec validation guarantees every
/// kind reaching the pipeline is a registry name.
fn designer_for(kind: &str, design: &DesignSpec) -> Box<dyn Designer> {
    match kind {
        "wd" => Box::new(WalkerDesigner { config: design.wd.clone() }),
        "rgt" => Box::new(RgtDesigner { config: design.rgt.clone() }),
        "slim" => Box::new(SlimDesigner {
            config: design.wd.clone(),
            plane_factor: design.slim_plane_factor,
            min_planes: design.slim_min_planes,
        }),
        "starlink" => Box::new(StarlinkDesigner { scale: design.starlink_scale }),
        _ => Box::new(SsDesigner { config: design.ss }),
    }
}

/// The optional survivability-per-satellite normalization
/// (`survivability.per_satellite`): outcome metrics divided by the
/// *designed* fleet size, so systems of very different scale (a slim
/// Walker vs the deployed Starlink catalog) compare on efficiency rather
/// than raw totals. `None` when the switch is off or the design is empty
/// — the block never changes existing bytes.
fn per_satellite_block(
    spec: &ScenarioSpec,
    design_sats: usize,
    availability: f64,
    lost_slot_days: f64,
    initial_spares: usize,
) -> Option<PerSatelliteReport> {
    if !spec.survivability.per_satellite || design_sats == 0 {
        return None;
    }
    let n = design_sats as f64;
    Some(PerSatelliteReport {
        sats: design_sats,
        availability_per_ksat: availability / n * 1000.0,
        lost_slot_days_per_sat: lost_slot_days / n,
        spares_per_sat: initial_spares as f64 / n,
    })
}

/// Per-stage wall-clock of one scenario — the timing side channel. Kept
/// strictly out of [`ScenarioReport`] so the report JSON stays a pure
/// (byte-deterministic) function of the spec; timings go to a separate
/// file or stderr (`scenario-runner --timings`).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ScenarioTimings {
    /// The scenario's name.
    pub name: String,
    /// `(stage, seconds)` in execution order. Stages are named
    /// `demand.model`, `demand.grid`, and `<system>.<stage>` for the
    /// per-system design/fluence/survivability/network stages.
    pub stages: Vec<(String, f64)>,
    /// `(metric, value)` derived-rate rows in execution order — e.g.
    /// `<system>.attack_search.candidates_per_sec`, the attack search's
    /// scoring throughput. Not wall-clock, so kept out of
    /// [`Self::total_seconds`].
    pub metrics: Vec<(String, f64)>,
}

impl ScenarioTimings {
    /// Total wall-clock across stages \[s\] (metric rows excluded).
    pub fn total_seconds(&self) -> f64 {
        self.stages.iter().map(|&(_, s)| s).sum()
    }
}

/// Collects `(stage, seconds)` pairs around closures, plus derived
/// `(metric, value)` rate rows.
struct StageClock {
    stages: Vec<(String, f64)>,
    metrics: Vec<(String, f64)>,
}

impl StageClock {
    fn time<T>(&mut self, stage: &str, f: impl FnOnce() -> T) -> T {
        // ssplane-lint: allow(wall-clock) -- --timings side channel; durations never enter report bytes
        let start = std::time::Instant::now();
        let out = f();
        self.stages.push((stage.to_string(), start.elapsed().as_secs_f64()));
        out
    }

    /// The wall-clock of the most recently timed stage \[s\].
    fn last_stage_seconds(&self) -> f64 {
        self.stages.last().map_or(0.0, |&(_, s)| s)
    }

    fn metric(&mut self, name: String, value: f64) {
        self.metrics.push((name, value));
    }
}

/// The slots destroyed by the scenario's *fixed* attack on one designed
/// system (empty when the attack stage is inactive, or when the kind is
/// `optimized` — the searched attack is computed against the network
/// context, see [`run_attack_search`]). The attack model comes from the
/// `attack.kind` registry; selection is deterministic in the scenario
/// seed.
fn attack_destroyed(spec: &ScenarioSpec, sys: &DesignedSystem, epoch: Epoch) -> Result<Vec<SatId>> {
    if !spec.attack.is_active() || sys.planes.is_empty() {
        return Ok(Vec::new());
    }
    let Some(model) = spec.attack.fixed_model() else {
        return Ok(Vec::new());
    };
    let target = AttackTarget {
        planes: sys.planes.iter().map(|p| p.satellites.as_slice()).collect(),
        plane_groups: sys.planes.iter().map(|p| p.eval_idx).collect(),
        epoch,
    };
    Ok(model.destroyed(&target, spec.seed)?)
}

/// The report row of a design summary.
fn design_report(summary: &DesignSummary) -> DesignReport {
    DesignReport {
        sats: summary.sats,
        planes: summary.planes,
        shells: summary.shells,
        sats_per_plane: summary.sats_per_plane,
        inclination_deg: summary.inclination_deg,
        unserved_demand: summary.unserved_demand,
    }
}

/// Runs every post-design, pre-network stage for one designed system.
/// `destroyed` is the attack's victim set ([`attack_destroyed`]); the
/// per-plane doses are returned alongside the report so the degraded
/// network stage can drive its outage timeline without re-sampling
/// fluence.
#[allow(clippy::too_many_arguments)]
fn system_report(
    spec: &ScenarioSpec,
    name: &str,
    sys: &DesignedSystem,
    destroyed: &[SatId],
    env: &RadiationEnvironment,
    epoch: Epoch,
    fluence_stage: bool,
    clock: &mut StageClock,
) -> Result<(SystemReport, Option<Vec<DailyFluence>>)> {
    let mut report = SystemReport {
        design: design_report(&sys.summary),
        fluence: None,
        attack: None,
        attack_search: None,
        survivability: None,
        network: None,
    };

    // Attack bookkeeping over the destroyed set: pure counting, so it
    // runs (and reports capacity retention) even in design-only
    // scenarios with the radiation stage disabled.
    let mut destroyed_per_plane = vec![0usize; sys.planes.len()];
    for id in destroyed {
        destroyed_per_plane[id.plane] += 1;
    }
    if spec.attack.is_active() && !sys.planes.is_empty() {
        let planes_lost = sys
            .planes
            .iter()
            .zip(&destroyed_per_plane)
            .filter(|(p, &d)| p.n_sats > 0 && d >= p.n_sats)
            .count();
        let sats_lost = destroyed.len();
        let total: usize = sys.total_sats();
        report.attack = Some(AttackReport {
            planes_lost,
            sats_lost,
            capacity_retained: if total == 0 { 0.0 } else { 1.0 - sats_lost as f64 / total as f64 },
        });
    }

    if !fluence_stage || sys.eval_groups.is_empty() {
        return Ok((report, None));
    }

    // The fig10-parity statistic: `phases` samples per evaluation group,
    // weighted median across the constellation.
    let phases = spec.radiation.phases.max(1);
    let samples = clock.time(&format!("{name}.fluence"), || {
        plane_fluence_samples(&sys.eval_groups, env, epoch, phases, spec.radiation.step_s)
    })?;
    let median = weighted_median_fluence(&samples);

    // Per-evaluation-group dose (mean over its phase samples); planes
    // inherit the dose of their group.
    let eval_doses: Vec<DailyFluence> = samples
        .chunks(phases)
        .map(|chunk| {
            let n = chunk.len() as f64;
            DailyFluence {
                electron: chunk.iter().map(|(f, _)| f.electron).sum::<f64>() / n,
                proton: chunk.iter().map(|(f, _)| f.proton).sum::<f64>() / n,
            }
        })
        .collect();
    let plane_doses: Vec<DailyFluence> =
        sys.planes.iter().map(|p| eval_doses[p.eval_idx]).collect();
    let mean = DailyFluence {
        electron: plane_doses.iter().map(|d| d.electron).sum::<f64>()
            / plane_doses.len().max(1) as f64,
        proton: plane_doses.iter().map(|d| d.proton).sum::<f64>() / plane_doses.len().max(1) as f64,
    };
    report.fluence = Some(FluenceReport {
        median_electron: median.electron,
        median_proton: median.proton,
        mean_electron: mean.electron,
        mean_proton: mean.proton,
        solar_activity: env.solar.activity(epoch),
    });

    if spec.survivability.enabled {
        // A plane survives unless the attack destroyed every one of its
        // satellites; partial losses keep the plane with a reduced count.
        let surviving: Vec<(usize, usize)> = sys
            .planes
            .iter()
            .enumerate()
            .filter(|(i, p)| !(p.n_sats > 0 && destroyed_per_plane[*i] >= p.n_sats))
            .map(|(i, p)| (i, p.n_sats - destroyed_per_plane[i]))
            .collect();
        if surviving.is_empty() {
            // The attack wiped out every plane: that is an availability-0
            // outcome, not a missing stage — a sweep plotting
            // availability vs planes_lost must see its extreme point.
            // `lost_slot_days` counts vacancy-days among *surviving*
            // slots (the simulation's metric), so it is 0 here, exactly
            // as attack-destroyed slots are excluded in partial attacks;
            // the destroyed capacity itself is the attack report's
            // `sats_lost` / `capacity_retained`.
            report.survivability = Some(SurvivabilityOutcome {
                availability: 0.0,
                failures: 0,
                replacements: 0,
                lost_slot_days: 0.0,
                spares_consumed: 0,
                initial_spares: 0,
                per_satellite: per_satellite_block(spec, sys.total_sats(), 0.0, 0.0, 0),
            });
        } else {
            let doses: Vec<DailyFluence> = surviving.iter().map(|&(i, _)| plane_doses[i]).collect();
            let sats: usize = surviving.iter().map(|&(_, n)| n).sum();
            // Round to nearest: flooring the mean would silently drop up
            // to one satellite per plane from the simulated fleet (a ~10%
            // undercount for small uneven Walker shells).
            let sats_per_plane = ((sats as f64 / surviving.len() as f64).round() as usize).max(1);
            let process = spec.survivability.process();
            let sim = clock.time(&format!("{name}.survivability"), || {
                simulate_process(
                    &doses,
                    sats_per_plane,
                    &*process,
                    &spec.survivability.policy,
                    spec.survivability.sim_config(spec.seed),
                )
            })?;
            let initial_spares = spec.survivability.policy.total_spares(surviving.len());
            report.survivability = Some(SurvivabilityOutcome {
                availability: sim.availability,
                failures: sim.failures,
                replacements: sim.replacements,
                lost_slot_days: sim.lost_slot_days,
                spares_consumed: sim.spares_consumed,
                initial_spares,
                per_satellite: per_satellite_block(
                    spec,
                    sys.total_sats(),
                    sim.availability,
                    sim.lost_slot_days,
                    initial_spares,
                ),
            });
        }
    }
    Ok((report, Some(plane_doses)))
}

/// Nearest-rank percentile of an ascending-sorted sample (NaN if empty):
/// the smallest value with at least `q·n` of the sample at or below it,
/// i.e. 1-based rank `ceil(q·n)` clamped to `[1, n]`. At `n = 10, q =
/// 0.5` this is the 5th value — not the rounded linear index the
/// pre-fix implementation returned.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let n = sorted.len();
    let rank = (q * n as f64).ceil() as usize;
    sorted[rank.clamp(1, n) - 1]
}

/// The per-slot statistics the intact `time_grid` block and the
/// `degraded` block both report, computed by one aggregator so the two
/// stay method-for-method comparable.
struct SlotAggregates {
    slots: usize,
    connected_slots: usize,
    min_routed: usize,
    mean_routed: f64,
    peak_link_load: f64,
    mean_link_load: f64,
    delay_p50_ms: f64,
    delay_p90_ms: f64,
    delay_p99_ms: f64,
}

fn slot_aggregates(per_slot: &[(bool, &TrafficReport)]) -> SlotAggregates {
    let slots = per_slot.len();
    let denom = slots.max(1) as f64;
    let connected_slots = per_slot.iter().filter(|(connected, _)| *connected).count();
    let min_routed = per_slot.iter().map(|(_, t)| t.routed).min().unwrap_or(0);
    let mean_routed = per_slot.iter().map(|(_, t)| t.routed as f64).sum::<f64>() / denom;
    let peak_link_load = per_slot.iter().map(|(_, t)| t.max_link_load()).fold(0.0, f64::max);
    let mean_link_load = per_slot.iter().map(|(_, t)| t.mean_link_load()).sum::<f64>() / denom;
    // Delay distribution over every routed (flow, slot) pair, in
    // deterministic (slot-major, then flow) collection order before the
    // total-order sort.
    let mut delays: Vec<f64> = per_slot
        .iter()
        .flat_map(|(_, t)| t.flow_outcomes.iter().flatten().map(|o| o.delay_ms))
        .collect();
    delays.sort_by(|a, b| a.partial_cmp(b).expect("finite delays"));
    SlotAggregates {
        slots,
        connected_slots,
        min_routed,
        mean_routed,
        peak_link_load,
        mean_link_load,
        delay_p50_ms: percentile(&delays, 0.50),
        delay_p90_ms: percentile(&delays, 0.90),
        delay_p99_ms: percentile(&delays, 0.99),
    }
}

/// The time-resolved aggregate over per-slot traffic reports and
/// connectivity flags (the `time_grid` report block).
fn time_grid_report(per_slot: &[(bool, TrafficReport)]) -> TimeGridReport {
    let views: Vec<(bool, &TrafficReport)> =
        per_slot.iter().map(|(connected, t)| (*connected, t)).collect();
    let agg = slot_aggregates(&views);

    // Per-flow serving-pair handoffs across consecutive routable slots.
    // A slot where the flow is unroutable resets the previous pair: a
    // route re-acquired on a different pair after a gap is a fresh
    // attachment, not a handoff (the same contract as
    // `TimeExpandedRoutes::handoffs`).
    let n_flows = per_slot.first().map_or(0, |(_, t)| t.flow_outcomes.len());
    let mut handoffs = 0usize;
    for flow in 0..n_flows {
        let mut prev = None;
        for (_, t) in per_slot {
            let Some(ends) = t.flow_outcomes[flow].map(|o| o.ends) else {
                prev = None;
                continue;
            };
            if let Some(p) = prev {
                if p != ends {
                    handoffs += 1;
                }
            }
            prev = Some(ends);
        }
    }

    TimeGridReport {
        slots: agg.slots,
        connected_slots: agg.connected_slots,
        min_routed: agg.min_routed,
        mean_routed: agg.mean_routed,
        peak_link_load: agg.peak_link_load,
        mean_link_load: agg.mean_link_load,
        delay_p50_ms: agg.delay_p50_ms,
        delay_p90_ms: agg.delay_p90_ms,
        delay_p99_ms: agg.delay_p99_ms,
        handoffs,
    }
}

/// The degraded-network aggregate over per-slot `(connected, alive,
/// traffic)` triples, reported next to the intact baseline.
fn degraded_report(
    per_slot: &[(bool, usize, TrafficReport)],
    total_sats: usize,
    n_flows: usize,
    intact_mean_link_load: f64,
) -> DegradedNetworkReport {
    let views: Vec<(bool, &TrafficReport)> =
        per_slot.iter().map(|(connected, _, t)| (*connected, t)).collect();
    let agg = slot_aggregates(&views);
    let denom = per_slot.len().max(1) as f64;
    let min_alive = per_slot.iter().map(|&(_, alive, _)| alive).min().unwrap_or(0);
    let mean_alive = per_slot.iter().map(|&(_, alive, _)| alive as f64).sum::<f64>() / denom;
    DegradedNetworkReport {
        slots: agg.slots,
        mean_alive_fraction: if total_sats == 0 { 0.0 } else { mean_alive / total_sats as f64 },
        min_alive,
        connected_slots: agg.connected_slots,
        min_routed: agg.min_routed,
        mean_routed: agg.mean_routed,
        routed_fraction: if n_flows == 0 { 0.0 } else { agg.mean_routed / n_flows as f64 },
        peak_link_load: agg.peak_link_load,
        mean_link_load: agg.mean_link_load,
        // Serialized `null` when the intact grid carries no load.
        load_inflation: agg.mean_link_load / intact_mean_link_load,
        delay_p50_ms: agg.delay_p50_ms,
        delay_p90_ms: agg.delay_p90_ms,
        delay_p99_ms: agg.delay_p99_ms,
        served_fraction: None,
        min_served_fraction: None,
    }
}

/// The network constellation's flat layout relative to the design's
/// plane order: `Constellation::from_planes` permutes planes by
/// `network_order` and drops empty planes, so attack victims expressed
/// as design-plane [`SatId`]s must be translated before they can mask a
/// snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
struct NetworkLayout {
    /// Design plane index of each network plane (empty planes dropped).
    kept: Vec<usize>,
    /// Network plane index per design plane (`usize::MAX` for planes the
    /// network dropped).
    net_plane_of_design: Vec<usize>,
    /// Flat start index per network plane.
    offsets: Vec<usize>,
    /// Satellites per network plane.
    plane_sats: Vec<usize>,
    /// Total satellites in the network layout.
    total: usize,
}

impl NetworkLayout {
    /// Flat network index of a design-plane satellite id (`None` when
    /// its plane was dropped or the slot is out of range).
    fn flat_of_design(&self, id: SatId) -> Option<usize> {
        let np = *self.net_plane_of_design.get(id.plane)?;
        if np == usize::MAX || id.slot >= self.plane_sats[np] {
            return None;
        }
        Some(self.offsets[np] + id.slot)
    }

    /// The design-plane id of a network-layout id.
    fn design_id(&self, id: SatId) -> SatId {
        SatId { plane: self.kept[id.plane], slot: id.slot }
    }
}

/// Computes the [`NetworkLayout`] of one designed system — exactly the
/// permutation-plus-drop `Constellation::from_planes(sys.network_planes())`
/// performs.
fn network_layout(sys: &DesignedSystem) -> NetworkLayout {
    let kept: Vec<usize> = sys
        .network_order
        .iter()
        .copied()
        .filter(|&i| !sys.planes[i].satellites.is_empty())
        .collect();
    let mut net_plane_of_design = vec![usize::MAX; sys.planes.len()];
    let mut offsets = Vec::with_capacity(kept.len());
    let mut plane_sats = Vec::with_capacity(kept.len());
    let mut acc = 0usize;
    for (np, &dp) in kept.iter().enumerate() {
        net_plane_of_design[dp] = np;
        offsets.push(acc);
        plane_sats.push(sys.planes[dp].satellites.len());
        acc += sys.planes[dp].satellites.len();
    }
    NetworkLayout { kept, net_plane_of_design, offsets, plane_sats, total: acc }
}

/// Everything the network-facing stages share for one designed system:
/// the network constellation, the batch-propagated traffic-grid
/// [`SnapshotSeries`], the demand-weighted flow sample, and the
/// design↔network plane mapping. Built once per system — the attack
/// search and the network report ride the same propagation cache, so an
/// optimized attack never costs a second build.
struct NetworkContext {
    constellation: Constellation,
    topo_config: GridTopologyConfig,
    min_elev: f64,
    t: Epoch,
    grid: Vec<Epoch>,
    series: SnapshotSeries,
    flows: Vec<Flow>,
    layout: NetworkLayout,
    /// The population-scale gravity workload (`traffic.model =
    /// "gravity"`), in satellite-capacity units: the emitted rates are
    /// rescaled so the total offered demand equals
    /// `demand.total_demand_b`.
    workload: Option<TrafficWorkload>,
}

/// Builds the [`NetworkContext`]: one parallel snapshot build over the
/// traffic grid (`build_threads` scoped workers, `0` = the machine) and
/// one seeded flow sample.
fn network_context(
    spec: &ScenarioSpec,
    model: &DemandModel,
    sys: &DesignedSystem,
    epoch: Epoch,
    build_threads: usize,
) -> Result<NetworkContext> {
    let constellation = Constellation::from_planes(epoch, sys.network_planes())?;
    let topo_config = GridTopologyConfig {
        max_range_km: spec.network.max_range_km,
        ..GridTopologyConfig::default()
    };
    let t = epoch + spec.network.utc_hour * 3600.0;
    let grid_slots = spec.network.time_grid_slots.max(1);
    let grid = time_grid(t, grid_slots, spec.network.time_grid_slot_s);
    let series = SnapshotSeries::build_parallel(&constellation, &grid, build_threads)?;
    // Flow endpoints are demand-weighted; the stream is derived from the
    // scenario seed so sweeps decorrelate. One flow set is routed at
    // every slot (the grid varies the geometry, not the demand sample).
    let flows = sample_flows(
        model,
        spec.network.utc_hour,
        spec.network.n_flows,
        spec.seed.wrapping_add(0x9E37_79B9),
    );
    let layout = network_layout(sys);
    debug_assert_eq!(layout.total, series.n_sats(), "network layout mismatch");
    // The gravity workload, when asked for: seeded pair sampling over the
    // same demand model, rescaled so the offered total is the scenario's
    // `demand.total_demand_b` (satellite-capacity units — the same units
    // `traffic.capacity_gbps` budgets each ISL in).
    let workload = if spec.traffic.model == TrafficModel::Gravity {
        let config = GravityConfig {
            pairs: spec.traffic.pairs,
            sites: spec.traffic.sites,
            utc_hour: spec.network.utc_hour,
            seed: spec.seed ^ TRAFFIC_SEED_SALT,
            ..GravityConfig::default()
        };
        let gravity = gravity_flows(model, &config, build_threads)?;
        let total = grid_demand_total(model, spec.network.utc_hour);
        Some(TrafficWorkload::from_gravity(
            &gravity,
            spec.demand.total_demand_b / total,
            CapacityConfig {
                link_capacity: spec.traffic.capacity_gbps,
                k_paths: spec.traffic.k_paths,
            },
        ))
    } else {
        None
    };
    Ok(NetworkContext {
        constellation,
        topo_config,
        min_elev: spec.network.min_elevation_deg.to_radians(),
        t,
        grid,
        series,
        flows,
        layout,
        workload,
    })
}

/// Runs the adversarial attack search (`attack.kind = "optimized"`) for
/// one designed system over its prebuilt [`NetworkContext`]. Returns the
/// found worst-case destroyed set translated back to **design-plane**
/// ids (what the attack bookkeeping and survivability stages consume)
/// plus the report block.
///
/// The same-budget fixed-attack baseline (`leading-planes` for a plane
/// budget, `random-sats` for a satellite budget) is scored with the same
/// objective and seeded into the search's start pool, so the found
/// attack is reported next to it and is never weaker.
fn run_attack_search(
    spec: &ScenarioSpec,
    sys: &DesignedSystem,
    ctx: &NetworkContext,
    evaluator: &DegradedEvaluator<'_>,
    threads: usize,
) -> Result<(Vec<SatId>, AttackSearchReport)> {
    let config = spec.attack.search_config(threads);
    let n_net_planes = ctx.layout.kept.len();
    let (baseline_name, baseline): (&str, Vec<SatId>) = match spec.attack.unit {
        AttackUnit::Planes => {
            let victims = strided_plane_indices(n_net_planes, spec.attack.budget)
                .into_iter()
                .flat_map(|p| {
                    (0..ctx.layout.plane_sats[p]).map(move |s| SatId { plane: p, slot: s })
                })
                .collect();
            ("leading-planes", victims)
        }
        AttackUnit::Sats => {
            // The seeded random baseline over the *network* constellation
            // (the search's own candidate space).
            let element_planes: Vec<&[ssplane_astro::kepler::OrbitalElements]> =
                ctx.layout.kept.iter().map(|&dp| sys.planes[dp].satellites.as_slice()).collect();
            let target = AttackTarget {
                plane_groups: (0..element_planes.len()).collect(),
                planes: element_planes,
                epoch: ctx.t,
            };
            let model = ssplane_lsn::disruption::RandomSats { sats_lost: spec.attack.budget };
            ("random-sats", model.destroyed(&target, spec.seed)?)
        }
    };
    let baseline_value = evaluator.score_attack(&baseline, config.objective)?;
    let outcome = optimize_attack(evaluator, &config, spec.seed, &[baseline])?;
    let mut destroyed: Vec<SatId> =
        outcome.destroyed.iter().map(|&id| ctx.layout.design_id(id)).collect();
    destroyed.sort_unstable();
    let report = AttackSearchReport {
        objective: config.objective.as_str().to_string(),
        unit: spec.attack.unit.as_str().to_string(),
        budget: spec.attack.budget,
        restarts: spec.attack.restarts,
        // The baseline's standalone scoring above is one extra candidate
        // on top of the search's own counts (and it is always distinct
        // work: it runs through the full evaluator, not the scorer).
        candidates_scored: outcome.candidates_evaluated + 1,
        candidates_unique: outcome.candidates_unique + 1,
        objective_value: outcome.objective_value,
        baseline: baseline_name.to_string(),
        baseline_value,
        intact_value: outcome.intact_value,
    };
    Ok((destroyed, report))
}

/// Runs the networking stage over one designed system's prebuilt
/// [`NetworkContext`]: a [`DegradedEvaluator`] supplies the per-slot
/// intact topologies and traffic assignments (the same reusable
/// evaluation the attack search scores candidates through), plus the
/// time-expanded reference route. With `time_grid_slots = 1` this is
/// byte-identical to the classic single-instant stage; with more slots
/// the per-slot metrics aggregate into the `time_grid` report block.
///
/// With `network.with_outages`, the same series (no re-propagation)
/// additionally feeds a **degraded** pass: each slot's snapshot is
/// masked by the attack's `destroyed` set plus, when survivability is
/// enabled, an [`OutageTimeline`] driven by `plane_doses` and sampled at
/// the slot's mission fraction — so the grid reads as orbital geometry
/// *and* mission life at once. Each masked slot filters the prebuilt
/// intact topology ([`ssplane_lsn::topology::Topology::masked`]) instead
/// of re-running the geometric construction.
#[allow(clippy::too_many_lines)]
fn network_report(
    spec: &ScenarioSpec,
    ctx: &NetworkContext,
    evaluator: &DegradedEvaluator<'_>,
    destroyed: &[SatId],
    plane_doses: Option<&[DailyFluence]>,
    build_threads: usize,
) -> Result<NetworkReport> {
    let NetworkContext {
        constellation,
        topo_config,
        min_elev,
        t,
        grid,
        series,
        flows,
        layout,
        workload,
    } = ctx;
    let (topo_config, min_elev) = (*topo_config, *min_elev);
    let per_slot: Vec<(bool, TrafficReport)> =
        evaluator.intact().iter().map(|e| (e.connected, e.traffic.clone())).collect();

    // The reference pair of every routing walkthrough in this repo:
    // New York -> London across the configured (route-grid) slots. When
    // the route grid coincides with the traffic grid, the reference
    // route rides the evaluator's per-slot topologies instead of
    // rebuilding the whole series.
    let src = GeoPoint::from_degrees(40.7, -74.0);
    let dst = GeoPoint::from_degrees(51.5, -0.1);
    let route_grid = time_grid(*t, spec.network.slots.max(1), spec.network.slot_s);
    let routes = if route_grid == *grid {
        let mut shared_routes: Vec<Option<Route>> = Vec::with_capacity(series.len());
        for (k, snapshot) in series.iter().enumerate() {
            match route_ground_to_ground(
                &snapshot,
                evaluator.intact_topology(k),
                src,
                dst,
                min_elev,
            ) {
                Ok(r) => shared_routes.push(Some(r)),
                Err(LsnError::NoRoute) => shared_routes.push(None),
                Err(e) => return Err(e.into()),
            }
        }
        TimeExpandedRoutes { epochs: route_grid, routes: shared_routes }
    } else {
        let route_series =
            SnapshotSeries::build_parallel(constellation, &route_grid, build_threads)?;
        route_over_time(&route_series, src, dst, min_elev, topo_config)?
    };

    // The degraded pass: rides the same snapshot series (and prebuilt
    // intact topologies) as the intact loop above.
    let degraded = if spec.network.with_outages {
        let total = series.n_sats();
        // Seed both working masks from the evaluator's shared all-alive
        // buffer instead of rebuilding the all-true vec from scratch.
        let mut alive_base = evaluator.all_alive().to_vec();
        for id in destroyed {
            if let Some(flat) = layout.flat_of_design(*id) {
                alive_base[flat] = false;
            }
        }

        // The outage timeline over the real per-plane fleet (the scalar
        // survivability report keeps its historical uniform-plane
        // approximation); destroyed slots draw no lifetimes and consume
        // no spares.
        let timeline: Option<OutageTimeline> = match plane_doses {
            Some(doses) if spec.survivability.enabled => {
                let kept_doses: Vec<DailyFluence> = layout.kept.iter().map(|&i| doses[i]).collect();
                let dead: Vec<bool> = alive_base.iter().map(|&a| !a).collect();
                let process = spec.survivability.process();
                Some(outage_timeline(
                    &kept_doses,
                    &layout.plane_sats,
                    Some(&dead),
                    &*process,
                    &spec.survivability.policy,
                    spec.survivability.sim_config(spec.seed ^ OUTAGE_SEED_SALT),
                )?)
            }
            _ => None,
        };

        let mut degraded_slots: Vec<(bool, usize, TrafficReport)> =
            Vec::with_capacity(series.len());
        let mut served_fractions: Vec<f64> = Vec::with_capacity(series.len());
        let mut mask = evaluator.all_alive().to_vec();
        for k in 0..series.len() {
            mask.copy_from_slice(&alive_base);
            if let Some(tl) = &timeline {
                // Slot k samples the mission at fraction (k + 0.5)/slots.
                let day = tl.horizon_days * (k as f64 + 0.5) / series.len() as f64;
                tl.mask_alive(day, &mut mask);
            }
            let eval = evaluator.evaluate_slot(k, Some(&mask))?;
            if let Some(s) = &eval.served {
                served_fractions.push(s.served_fraction);
            }
            degraded_slots.push((eval.connected, eval.alive, eval.traffic));
        }
        let mut deg =
            degraded_report(&degraded_slots, total, flows.len(), evaluator.intact_mean_link_load());
        if workload.is_some() && served_fractions.len() == degraded_slots.len() {
            let denom = served_fractions.len().max(1) as f64;
            deg.served_fraction = Some(served_fractions.iter().sum::<f64>() / denom);
            deg.min_served_fraction =
                Some(served_fractions.iter().copied().fold(f64::INFINITY, f64::min));
        }
        Some(deg)
    } else {
        None
    };

    // The engine's headline block: the classic instant (slot 0 of the
    // grid), reported next to the sampled-flow statistics it generalizes.
    let served = evaluator.intact()[0].served.as_ref().map(|s| {
        let safe = |x: f64| if s.offered > 0.0 { x / s.offered } else { 0.0 };
        ServedDemandReport {
            flows: s.flows,
            pairs: s.pairs,
            offered: s.offered,
            served_fraction: s.served_fraction,
            dropped_fraction: safe(s.dropped),
            unattached_fraction: safe(s.unattached),
            utilization_p50: s.utilization_p50,
            utilization_p90: s.utilization_p90,
            utilization_p99: s.utilization_p99,
            utilization_max: s.utilization_max,
        }
    });

    let (_, traffic) = &per_slot[0];
    Ok(NetworkReport {
        routed: traffic.routed,
        unrouted: traffic.unrouted,
        mean_stretch: traffic.mean_stretch,
        mean_hops: traffic.mean_hops,
        max_link_load: traffic.max_link_load(),
        mean_link_load: traffic.mean_link_load(),
        reachable_slots: routes.reachable_slots(),
        slots: routes.routes.len(),
        handoffs: routes.handoffs(),
        mean_delay_ms: routes.mean_delay_ms(),
        served,
        time_grid: (grid.len() > 1).then(|| time_grid_report(&per_slot)),
        degraded,
        percolation: None,
    })
}

/// Averages per-slot percolation curves point-wise. Every slot sweeps
/// the same ordering over the same satellite count, so the loss and
/// removed axes are identical across slots; only the cluster statistics
/// differ with each slot's geometry-feasible link set.
fn averaged_curve(curves: &[PercolationCurve]) -> PercolationCurve {
    let first = &curves[0];
    let n = curves.len() as f64;
    let avg = |pick: fn(&PercolationCurve) -> &Vec<f64>| -> Vec<f64> {
        (0..first.len()).map(|k| curves.iter().map(|c| pick(c)[k]).sum::<f64>() / n).collect()
    };
    PercolationCurve {
        n_nodes: first.n_nodes,
        loss_fraction: first.loss_fraction.clone(),
        removed: first.removed.clone(),
        giant_fraction: avg(|c| &c.giant_fraction),
        susceptibility: avg(|c| &c.susceptibility),
        mean_finite_cluster: avg(|c| &c.mean_finite_cluster),
    }
}

/// Runs the percolation stage (`network.percolation`) over the network
/// stage's prebuilt intact per-slot topologies — pure union-find replay
/// and one power iteration per slot, no re-propagation and no routing.
///
/// One loss-fraction sweep per attack-registry ordering, slot-averaged:
/// `"leading-planes"` (the plane-spread schedule whose power-of-two
/// prefixes reproduce the strided plane attack), `"random-sats"` (the
/// seeded uniform baseline every targeted ordering's
/// `threshold_vs_random` is measured against), and — when the scenario's
/// attack destroyed anything — `"attack"`, the destroyed set leading the
/// plane-spread schedule.
fn percolation_report(
    spec: &ScenarioSpec,
    ctx: &NetworkContext,
    evaluator: &DegradedEvaluator<'_>,
    destroyed: &[SatId],
) -> PercolationReport {
    let (steps, gap) = (spec.network.percolation_steps, spec.network.percolation_gap);
    let slots = ctx.series.len();
    let spread = plane_spread_ordering(evaluator.intact_topology(0));
    let random = random_ordering(ctx.series.n_sats(), spec.seed ^ PERCOLATION_SEED_SALT);
    let mut orderings: Vec<(&str, Vec<usize>)> =
        vec![("leading-planes", spread.clone()), ("random-sats", random)];
    if !destroyed.is_empty() {
        let priority: Vec<usize> =
            destroyed.iter().filter_map(|&id| ctx.layout.flat_of_design(id)).collect();
        orderings.push(("attack", priority_ordering(&priority, &spread)));
    }

    let lambda2_intact = (0..slots)
        .map(|k| {
            algebraic_connectivity(
                evaluator.intact_topology(k),
                evaluator.all_alive(),
                &Lambda2Config::default(),
            )
        })
        .sum::<f64>()
        / slots as f64;

    let curves: Vec<(&str, PercolationCurve)> = orderings
        .iter()
        .map(|(name, order)| {
            let per_slot: Vec<PercolationCurve> = (0..slots)
                .map(|k| percolation_sweep(evaluator.intact_topology(k), order, steps))
                .collect();
            (*name, averaged_curve(&per_slot))
        })
        .collect();
    let random_curve =
        &curves.iter().find(|(name, _)| *name == "random-sats").expect("baseline swept").1;

    let models = curves
        .iter()
        .map(|(name, curve)| {
            let (chi_peak_loss, chi_peak) = curve.chi_peak();
            PercolationModelReport {
                model: (*name).to_string(),
                masking_threshold: curve.masking_threshold(gap),
                threshold_vs_random: (*name != "random-sats")
                    .then(|| curve.threshold_vs(random_curve, gap))
                    .flatten(),
                chi_peak_loss,
                chi_peak,
                mean_giant: curve.mean_giant(),
                giant_curve: curve.giant_fraction.clone(),
            }
        })
        .collect();

    PercolationReport {
        steps,
        gap,
        slots,
        lambda2_intact,
        loss_fraction: random_curve.loss_fraction.clone(),
        models,
    }
}

/// The scenario pipeline body, writing stage timings into `clock`.
/// `build_threads` caps the network stage's snapshot-build workers.
fn run_scenario(
    spec: &ScenarioSpec,
    clock: &mut StageClock,
    build_threads: usize,
) -> Result<ScenarioReport> {
    spec.validate()?;

    // Demand stage.
    let model = clock.time("demand.model", || shared_demand_model(spec.demand.seed));
    let grid = clock.time("demand.grid", || {
        LatTodGrid::from_model(&model, spec.demand.lat_bins, spec.demand.tod_bins)
    })?;
    let total = grid.total();
    if !total.is_finite() || total <= 0.0 {
        return Err(ScenarioError::bad_value(
            "demand.grid",
            "0",
            "a demand grid with positive total",
        ));
    }
    let multiplier = spec.demand.total_demand_b / total;
    let demand = grid.scaled(multiplier);

    let env = RadiationEnvironment::default();
    let epoch = spec.radiation.epoch();
    let params = DesignParams { epoch };

    // One generic pipeline per selected system, in registry order (so the
    // spec's `kinds` ordering can never change the output bytes).
    let mut systems = Vec::new();
    for kind in spec.design.ordered_kinds() {
        let designer = designer_for(kind, &spec.design);
        let name = designer.name();
        let sys = clock.time(&format!("{name}.design"), || designer.design(&demand, &params))?;
        // The network context (propagation cache + flows) and the
        // degraded evaluator (intact per-slot topologies + traffic) are
        // built once and shared by the attack search and the network
        // stage — an optimized attack never costs a second build of
        // either.
        let needs_network = spec.network.enabled && sys.total_sats() > 0;
        let optimized = needs_network && spec.attack.kind == AttackKind::Optimized;
        let net_ctx: Option<NetworkContext> = if needs_network {
            Some(clock.time(&format!("{name}.network.setup"), || {
                network_context(spec, &model, &sys, epoch, build_threads)
            })?)
        } else {
            None
        };
        let evaluator: Option<DegradedEvaluator<'_>> = match &net_ctx {
            Some(ctx) => Some(clock.time(&format!("{name}.network.intact"), || {
                // The spec's percolation knobs also configure the
                // masking-threshold attack objective; only forward them
                // when they are in-range (they are unvalidated while the
                // percolation stage itself is off).
                let (steps, gap) = (spec.network.percolation_steps, spec.network.percolation_gap);
                DegradedEvaluator::with_workload(
                    &ctx.series,
                    &ctx.flows,
                    ctx.min_elev,
                    ctx.topo_config,
                    ctx.workload.as_ref(),
                )
                .map(|e| {
                    let e = if steps >= 1 && gap.is_finite() && gap > 0.0 && gap < 1.0 {
                        e.with_percolation(steps, gap)
                    } else {
                        e
                    };
                    // The incremental scorer's repair-fallback knob; like
                    // the percolation knobs, forward it only when valid
                    // (it is unvalidated for fixed attacks).
                    let frac = spec.attack.damage_threshold;
                    if frac.is_finite() && frac > 0.0 && frac <= 1.0 {
                        e.with_repair_threshold(frac)
                    } else {
                        e
                    }
                })
            })?),
            None => None,
        };
        // An optimized attack is a search over that machinery; every
        // fixed kind stays a pure function of the geometry.
        let mut attack_search: Option<AttackSearchReport> = None;
        let destroyed = if optimized {
            let (ctx, eval) =
                (net_ctx.as_ref().expect("context built"), evaluator.as_ref().expect("built"));
            let (victims, search) = clock.time(&format!("{name}.attack_search"), || {
                run_attack_search(spec, &sys, ctx, eval, build_threads)
            })?;
            // Surface search throughput next to the stage's wall-clock —
            // the bench harness's candidates/s without the bench harness.
            let secs = clock.last_stage_seconds().max(f64::EPSILON);
            clock.metric(
                format!("{name}.attack_search.candidates_per_sec"),
                search.candidates_scored as f64 / secs,
            );
            attack_search = Some(search);
            victims
        } else {
            attack_destroyed(spec, &sys, epoch)?
        };
        let (mut report, plane_doses) = system_report(
            spec,
            name,
            &sys,
            &destroyed,
            &env,
            epoch,
            spec.radiation.enabled,
            clock,
        )?;
        report.attack_search = attack_search;
        if needs_network {
            let (ctx, eval) =
                (net_ctx.as_ref().expect("context built"), evaluator.as_ref().expect("built"));
            report.network = Some(clock.time(&format!("{name}.network"), || {
                network_report(spec, ctx, eval, &destroyed, plane_doses.as_deref(), build_threads)
            })?);
            if spec.network.percolation {
                // Its own timing entry: the sweep is a distinct analytic
                // pass over the stage's topologies, not routing work.
                let block = clock.time(&format!("{name}.percolation"), || {
                    percolation_report(spec, ctx, eval, &destroyed)
                });
                if let Some(net) = report.network.as_mut() {
                    net.percolation = Some(block);
                }
            }
        }
        systems.push(NamedSystemReport { system: name.to_string(), report });
    }

    Ok(ScenarioReport {
        name: spec.name.clone(),
        seed: spec.seed,
        total_demand_b: spec.demand.total_demand_b,
        demand_multiplier: multiplier,
        solar: spec.radiation.solar.as_str().to_string(),
        epoch_jd: epoch.julian_date(),
        systems,
    })
}

/// Executes one scenario end-to-end.
///
/// # Errors
/// Validation failures and any stage error, tagged with the crate that
/// produced it.
pub fn execute_scenario(spec: &ScenarioSpec) -> Result<ScenarioReport> {
    execute_scenario_timed(spec).0
}

/// Executes one scenario end-to-end, also returning its stage timings
/// (collected even when the scenario fails partway: the stages that did
/// run are reported). A standalone execution owns the machine, so the
/// snapshot build may use every core.
pub fn execute_scenario_timed(spec: &ScenarioSpec) -> (Result<ScenarioReport>, ScenarioTimings) {
    execute_scenario_timed_with(spec, 0)
}

/// As [`execute_scenario_timed`], with the network stage's snapshot
/// build capped at `build_threads` scoped workers (`0` = all cores) —
/// the sweep runner passes each worker's share of the thread budget.
fn execute_scenario_timed_with(
    spec: &ScenarioSpec,
    build_threads: usize,
) -> (Result<ScenarioReport>, ScenarioTimings) {
    let mut clock = StageClock { stages: Vec::new(), metrics: Vec::new() };
    let result = run_scenario(spec, &mut clock, build_threads);
    (
        result,
        ScenarioTimings { name: spec.name.clone(), stages: clock.stages, metrics: clock.metrics },
    )
}

/// A parallel scenario runner.
#[derive(Debug, Clone, Copy, Default)]
pub struct Runner {
    /// Worker threads; `0` (the default) uses the machine's available
    /// parallelism.
    pub threads: usize,
}

/// The result of running a sweep: per-scenario outcomes in **scenario
/// order** (independent of scheduling), plus accessors for the JSON-lines
/// and summary forms.
#[derive(Debug)]
pub struct SweepOutcome {
    /// The expanded scenario names, index-aligned with `reports` — kept
    /// so a *failed* point is still identifiable in the output (its
    /// error record carries the name even though no report exists).
    pub names: Vec<String>,
    /// One outcome per expanded scenario, index-aligned with the
    /// expansion order.
    pub reports: Vec<Result<ScenarioReport>>,
    /// Stage timings per scenario, index-aligned with `reports`. Not part
    /// of the JSON-lines output (wall-clock is nondeterministic); see
    /// [`SweepOutcome::timings_table`].
    pub timings: Vec<ScenarioTimings>,
}

impl SweepOutcome {
    /// The JSON-lines serialization: one line per scenario, in scenario
    /// order; failed scenarios serialize as `{"name": ..., "error": ...}`
    /// records so a sweep with one infeasible point still reports the
    /// other points — and the failing grid point stays identifiable.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for (i, r) in self.reports.iter().enumerate() {
            match r {
                Ok(report) => out.push_str(&report.to_json_line()),
                Err(e) => {
                    out.push_str(
                        &crate::json::Json::obj()
                            .str("name", self.names.get(i).map_or("", String::as_str))
                            .str("error", &e.to_string())
                            .build()
                            .to_string_compact(),
                    );
                }
            }
            out.push('\n');
        }
        out
    }

    /// Scenarios that completed.
    pub fn ok_count(&self) -> usize {
        self.reports.iter().filter(|r| r.is_ok()).count()
    }

    /// The timing side channel as tab-separated text: one
    /// `scenario<TAB>stage<TAB>seconds` row per stage, in scenario order,
    /// with a per-scenario `total` row. Deliberately a separate artifact
    /// from the (byte-deterministic) report JSON.
    pub fn timings_table(&self) -> String {
        let mut out = String::from("scenario\tstage\tseconds\n");
        for t in &self.timings {
            for (stage, secs) in &t.stages {
                out.push_str(&format!("{}\t{stage}\t{secs:.6}\n", t.name));
            }
            out.push_str(&format!("{}\ttotal\t{:.6}\n", t.name, t.total_seconds()));
            // Derived rate rows (e.g. attack_search.candidates_per_sec)
            // after the totals: same three-column shape, value in the
            // last column, never summed into `total`.
            for (metric, value) in &t.metrics {
                out.push_str(&format!("{}\t{metric}\t{value:.6}\n", t.name));
            }
        }
        out
    }

    /// A human-readable aggregate summary (one row per scenario).
    pub fn summary(&self) -> String {
        const SYSTEMS: [(&str, &str); 5] =
            [("ss", "SS"), ("wd", "WD"), ("rgt", "RGT"), ("slim", "SLIM"), ("starlink", "STAR")];
        let mut out = String::new();
        out.push_str(&format!("{:<52}", "scenario"));
        for (_, label) in SYSTEMS {
            out.push_str(&format!(
                " {:>9} {:>10}",
                format!("{label} sats"),
                format!("{label} avail")
            ));
        }
        out.push('\n');
        for (i, r) in self.reports.iter().enumerate() {
            match r {
                Ok(rep) => {
                    out.push_str(&format!("{:<52}", rep.name));
                    for (name, _) in SYSTEMS {
                        let sats =
                            rep.system(name).map_or("-".to_string(), |x| x.design.sats.to_string());
                        let avail = rep
                            .system(name)
                            .and_then(|x| x.survivability.as_ref())
                            .map_or("-".to_string(), |v| format!("{:.4}", v.availability));
                        out.push_str(&format!(" {sats:>9} {avail:>10}"));
                    }
                    out.push('\n');
                }
                Err(e) => out.push_str(&format!(
                    "{:<52} error: {e}\n",
                    self.names.get(i).map_or("?", String::as_str)
                )),
            }
        }
        out
    }
}

/// The runner's total thread budget: the configured count, or the
/// machine's available parallelism when auto (`0`).
fn workers_total_budget(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism().map_or(4, std::num::NonZeroUsize::get)
    } else {
        threads
    }
}

impl Runner {
    /// A runner using `threads` workers (`0` = auto).
    pub fn with_threads(threads: usize) -> Self {
        Runner { threads }
    }

    fn worker_count(&self, jobs: usize) -> usize {
        workers_total_budget(self.threads).clamp(1, jobs.max(1))
    }

    /// Runs every spec, in parallel, returning outcomes in spec order.
    pub fn run_specs(&self, specs: &[ScenarioSpec]) -> SweepOutcome {
        let n = specs.len();
        let names: Vec<String> = specs.iter().map(|s| s.name.clone()).collect();
        let workers = self.worker_count(n);
        if workers <= 1 || n <= 1 {
            // The whole budget goes to intra-scenario parallelism (an
            // explicit `--threads k` still caps snapshot builds at k).
            let (reports, timings) =
                specs.iter().map(|spec| execute_scenario_timed_with(spec, self.threads)).unzip();
            return SweepOutcome { names, reports, timings };
        }
        let next = AtomicUsize::new(0);
        type Slot = Mutex<Option<(Result<ScenarioReport>, ScenarioTimings)>>;
        let slots: Vec<Slot> = (0..n).map(|_| Mutex::new(None)).collect();
        // Each concurrent worker gets its share of the thread budget for
        // intra-scenario parallelism (the network stage's snapshot
        // build), so a sweep never runs more threads than configured.
        let build_threads = (workers_total_budget(self.threads) / workers).max(1);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let outcome = execute_scenario_timed_with(&specs[i], build_threads);
                    *slots[i].lock().expect("runner slot poisoned") = Some(outcome);
                });
            }
        });
        let (reports, timings) = slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("runner slot poisoned")
                    .expect("every index claimed exactly once")
            })
            .unzip();
        SweepOutcome { names, reports, timings }
    }

    /// Expands and runs a sweep.
    ///
    /// # Errors
    /// Propagates expansion failure (unknown parameters, invalid specs);
    /// per-scenario execution failures are reported per line instead.
    pub fn run_sweep(&self, sweep: &SweepSpec) -> Result<SweepOutcome> {
        let specs = sweep.expand()?;
        Ok(self.run_specs(&specs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ScenarioSpec;

    fn tiny_spec() -> ScenarioSpec {
        let mut spec = ScenarioSpec::named("tiny");
        spec.demand.total_demand_b = 10.0;
        spec.radiation.phases = 1;
        spec.radiation.step_s = 300.0;
        spec.survivability.horizon_years = 2.0;
        spec
    }

    #[test]
    fn percolation_block_reports_targeted_collapse_before_random() {
        let mut spec = tiny_spec();
        spec.radiation.enabled = false;
        spec.survivability.enabled = false;
        spec.design.kinds = vec!["ss"];
        spec.network.enabled = true;
        spec.network.n_flows = 20;
        spec.network.slots = 2;

        // Baseline without the switch: no block, bytes as ever.
        let plain = execute_scenario(&spec).unwrap();
        assert!(plain.system("ss").unwrap().network.as_ref().unwrap().percolation.is_none());
        assert!(!plain.to_json_line().contains("percolation"));

        spec.network.percolation = true;
        let report = execute_scenario(&spec).unwrap();
        let net = report.system("ss").unwrap().network.clone().unwrap();
        let perc = net.percolation.expect("network.percolation adds the block");
        assert_eq!(perc.steps, 32);
        assert_eq!(perc.slots, 1, "defaults to the single-slot grid");
        assert_eq!(perc.loss_fraction.len(), 33);
        assert_eq!(perc.loss_fraction.first(), Some(&0.0));
        assert_eq!(perc.loss_fraction.last(), Some(&1.0));
        assert!(perc.lambda2_intact > 0.0, "the intact SS +grid is connected");
        let names: Vec<&str> = perc.models.iter().map(|m| m.model.as_str()).collect();
        assert_eq!(names, vec!["leading-planes", "random-sats"], "no attack, no attack sweep");
        for m in &perc.models {
            assert_eq!(m.giant_curve.len(), 33);
            assert!((m.giant_curve[0] - 1.0).abs() < 1e-12, "intact giant is everyone");
            assert_eq!(*m.giant_curve.last().unwrap(), 0.0, "total loss leaves nothing");
            assert!((0.0..=1.0).contains(&m.mean_giant));
            assert!(m.chi_peak_loss > 0.0 && m.chi_peak_loss < 1.0, "χ peaks inside the sweep");
        }
        // The paper-facing headline: targeted plane loss collapses the
        // giant component well before uniform random loss does, in the
        // exemplar's ~15–25 % critical-fraction band.
        let targeted = &perc.models[0];
        let random = &perc.models[1];
        let t = targeted.masking_threshold.expect("plane loss shatters the +grid");
        let r = random.masking_threshold.expect("random loss crosses the percolation threshold");
        assert!(t < r, "targeted collapse ({t}) must precede random collapse ({r})");
        assert!((0.1..=0.3).contains(&t), "targeted critical fraction {t} outside the band");
        assert!(random.threshold_vs_random.is_none(), "the baseline carries no self-gap");
        let vs = targeted.threshold_vs_random.expect("targeted opens a gap vs random");
        assert!(vs <= r);

        let line = report.to_json_line();
        assert!(line.contains(r#""percolation":{"steps":32"#), "{line}");
        // Byte determinism across reruns and across thread counts.
        assert_eq!(line, execute_scenario(&spec).unwrap().to_json_line());
        let (one, _) = execute_scenario_timed_with(&spec, 1);
        let (many, _) = execute_scenario_timed_with(&spec, 7);
        assert_eq!(one.unwrap().to_json_line(), many.unwrap().to_json_line());
    }

    #[test]
    fn attack_destroyed_set_joins_the_percolation_sweep() {
        let mut spec = tiny_spec();
        spec.radiation.enabled = false;
        spec.survivability.enabled = false;
        spec.design.kinds = vec!["ss"];
        spec.attack.planes_lost = 2;
        spec.network.enabled = true;
        spec.network.n_flows = 20;
        spec.network.slots = 2;
        spec.network.percolation = true;
        let report = execute_scenario(&spec).unwrap();
        let perc =
            report.system("ss").unwrap().network.clone().unwrap().percolation.expect("block on");
        let names: Vec<&str> = perc.models.iter().map(|m| m.model.as_str()).collect();
        assert_eq!(names, vec!["leading-planes", "random-sats", "attack"]);
        // Leading with the already-destroyed planes can only accelerate
        // the plane-spread schedule's collapse.
        let spread = perc.models[0].masking_threshold.unwrap();
        let attack = perc.models[2].masking_threshold.expect("the attack ordering collapses too");
        assert!(attack <= spread, "attack-led threshold {attack} vs spread {spread}");
    }

    #[test]
    fn masking_threshold_objective_runs_end_to_end() {
        use crate::spec::{AttackKind, AttackUnit};
        use ssplane_lsn::optimizer::AttackObjective;
        let mut spec = tiny_spec();
        spec.radiation.enabled = false;
        spec.survivability.enabled = false;
        spec.design.kinds = vec!["ss"];
        spec.attack.kind = AttackKind::Optimized;
        spec.attack.objective = AttackObjective::MaskingThreshold;
        spec.attack.unit = AttackUnit::Planes;
        spec.attack.budget = 2;
        spec.attack.restarts = 1;
        spec.attack.swaps = 3;
        spec.network.enabled = true;
        spec.network.n_flows = 20;
        spec.network.slots = 2;
        spec.network.percolation = true;
        spec.network.percolation_steps = 16;
        let report = execute_scenario(&spec).unwrap();
        let ss = report.system("ss").unwrap();
        let search = ss.attack_search.as_ref().expect("search block present");
        assert_eq!(search.objective, "masking-threshold");
        assert!(
            search.objective_value <= search.baseline_value,
            "the found attack ({}) must collapse no later than the same-budget \
             leading-planes baseline ({})",
            search.objective_value,
            search.baseline_value
        );
        assert!(search.objective_value <= search.intact_value);
        let perc =
            ss.network.as_ref().unwrap().percolation.clone().expect("percolation block present");
        assert_eq!(perc.steps, 16, "the spec's steps reach the sweep");
        let names: Vec<&str> = perc.models.iter().map(|m| m.model.as_str()).collect();
        assert_eq!(names, vec!["leading-planes", "random-sats", "attack"]);
        // Byte determinism across thread counts: the search and the
        // sweep share the strict index-ordered reductions.
        let (one, _) = execute_scenario_timed_with(&spec, 1);
        let (many, _) = execute_scenario_timed_with(&spec, 7);
        assert_eq!(one.unwrap().to_json_line(), many.unwrap().to_json_line());
    }

    #[test]
    fn execute_produces_both_systems() {
        let report = execute_scenario(&tiny_spec()).unwrap();
        let ss = report.system("ss").expect("ss present");
        let wd = report.system("wd").expect("wd present");
        assert!(report.system("rgt").is_none(), "rgt not selected by default");
        assert!(ss.design.sats > 0);
        assert!(wd.design.sats > ss.design.sats, "paper's headline: SS smaller");
        let ssf = ss.fluence.as_ref().expect("fluence on");
        let wdf = wd.fluence.as_ref().expect("fluence on");
        assert!(ssf.median_proton < wdf.median_proton, "SS sees fewer protons");
        assert!(ss.survivability.is_some());
        assert!(wd.survivability.is_some());
        assert!(ss.network.is_none(), "network off by default");
    }

    #[test]
    fn execution_is_deterministic() {
        let spec = tiny_spec();
        let a = execute_scenario(&spec).unwrap();
        let b = execute_scenario(&spec).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.to_json_line(), b.to_json_line());
    }

    #[test]
    fn rgt_kind_runs_end_to_end() {
        let mut spec = tiny_spec();
        spec.design.kinds = vec!["ss", "wd", "rgt"];
        let report = execute_scenario(&spec).unwrap();
        assert_eq!(
            report.systems.iter().map(|s| s.system.as_str()).collect::<Vec<_>>(),
            vec!["ss", "wd", "rgt"]
        );
        let rgt = report.system("rgt").unwrap();
        assert!(rgt.design.sats > 0);
        assert!(rgt.fluence.is_some(), "radiation stage covers RGT");
        assert!(rgt.survivability.is_some(), "survivability covers RGT");
        // The §2.2 negative result, visible in the report: covering the
        // repeat track costs more satellites than the SS design.
        let ss = report.system("ss").unwrap();
        assert!(rgt.design.sats > ss.design.sats, "rgt {} ss {}", rgt.design.sats, ss.design.sats);
    }

    #[test]
    fn kinds_order_never_changes_the_bytes() {
        let mut forward = tiny_spec();
        forward.design.kinds = vec!["ss", "wd"];
        let mut reversed = tiny_spec();
        reversed.design.kinds = vec!["wd", "ss"];
        let a = execute_scenario(&forward).unwrap().to_json_line();
        let b = execute_scenario(&reversed).unwrap().to_json_line();
        assert_eq!(a, b, "registry order must make kinds ordering irrelevant");
    }

    #[test]
    fn walker_network_stage_runs() {
        let mut spec = tiny_spec();
        spec.design.kinds = vec!["wd"];
        spec.survivability.enabled = false;
        spec.radiation.enabled = false;
        spec.network.enabled = true;
        spec.network.n_flows = 40;
        spec.network.slots = 2;
        let report = execute_scenario(&spec).unwrap();
        let net = report.system("wd").unwrap().network.as_ref().expect("Walker networking on");
        assert!(net.routed + net.unrouted == 40);
        assert!(net.routed > 0, "a Walker +grid must route some flows");
    }

    #[test]
    fn multi_slot_time_grid_adds_the_time_resolved_block() {
        let mut spec = tiny_spec();
        spec.design.kinds = vec!["ss"];
        spec.radiation.enabled = false;
        spec.survivability.enabled = false;
        spec.network.enabled = true;
        spec.network.n_flows = 30;
        spec.network.slots = 2;
        let single = execute_scenario(&spec).unwrap();
        let net = single.system("ss").unwrap().network.clone().expect("network on");
        assert!(net.time_grid.is_none(), "single-slot grid must not add the block");

        spec.network.time_grid_slots = 4;
        spec.network.time_grid_slot_s = 300.0;
        let multi = execute_scenario(&spec).unwrap();
        let mnet = multi.system("ss").unwrap().network.clone().expect("network on");
        let tg = mnet.time_grid.expect("multi-slot grid adds the block");
        assert_eq!(tg.slots, 4);
        assert!(tg.connected_slots <= 4);
        assert!(tg.min_routed <= net.routed);
        assert!(tg.mean_routed >= tg.min_routed as f64);
        assert!(tg.peak_link_load >= mnet.max_link_load);
        assert!(tg.delay_p50_ms <= tg.delay_p90_ms || tg.delay_p50_ms.is_nan());
        assert!(tg.delay_p90_ms <= tg.delay_p99_ms || tg.delay_p90_ms.is_nan());
        // Slot 0 of the grid *is* the classic instant: the headline
        // fields must be unchanged by widening the grid.
        assert_eq!(net.routed, mnet.routed);
        assert_eq!(net.mean_stretch, mnet.mean_stretch);
        assert_eq!(net.max_link_load, mnet.max_link_load);
        // The JSON gains exactly one new sub-object.
        let line = multi.to_json_line();
        assert!(line.contains(r#""time_grid":{"slots":4"#), "{line}");
        assert!(!single.to_json_line().contains("time_grid"));
    }

    #[test]
    fn shared_route_grid_reuses_topologies_without_changing_routes() {
        // When the reference-route grid coincides with the traffic grid
        // the stage rides the already-built per-slot topologies; the
        // route metrics must be exactly what a separate series yields.
        let mut spec = tiny_spec();
        spec.design.kinds = vec!["ss"];
        spec.radiation.enabled = false;
        spec.survivability.enabled = false;
        spec.network.enabled = true;
        spec.network.n_flows = 20;
        spec.network.slots = 3;
        spec.network.slot_s = 240.0;
        spec.network.time_grid_slots = 3;
        spec.network.time_grid_slot_s = 240.0; // shared with the route grid
        let shared = execute_scenario(&spec).unwrap();
        spec.network.time_grid_slots = 1; // forces the separate route series
        let separate = execute_scenario(&spec).unwrap();
        let s = shared.system("ss").unwrap().network.clone().unwrap();
        let n = separate.system("ss").unwrap().network.clone().unwrap();
        assert_eq!(s.reachable_slots, n.reachable_slots);
        assert_eq!(s.slots, n.slots);
        assert_eq!(s.handoffs, n.handoffs);
        assert_eq!(s.mean_delay_ms, n.mean_delay_ms);
        assert_eq!(s.routed, n.routed);
    }

    #[test]
    fn timings_are_collected_per_stage() {
        let mut spec = tiny_spec();
        spec.network.enabled = true;
        spec.network.n_flows = 20;
        spec.network.slots = 2;
        spec.network.percolation = true;
        spec.network.percolation_steps = 8;
        let (report, timings) = execute_scenario_timed(&spec);
        report.unwrap();
        let stages: Vec<&str> = timings.stages.iter().map(|(s, _)| s.as_str()).collect();
        for expected in [
            "demand.model",
            "demand.grid",
            "ss.design",
            "ss.fluence",
            "ss.survivability",
            "ss.network",
            "ss.percolation",
            "wd.design",
            "wd.fluence",
            "wd.survivability",
            "wd.network",
            "wd.percolation",
        ] {
            assert!(stages.contains(&expected), "missing stage {expected}: {stages:?}");
        }
        assert!(timings.stages.iter().all(|&(_, s)| s >= 0.0));
        assert!(timings.total_seconds() > 0.0);
    }

    #[test]
    fn demand_seed_changes_the_design() {
        let mut spec = tiny_spec();
        spec.radiation.enabled = false;
        spec.survivability.enabled = false;
        spec.design.kinds = vec!["ss"];
        let a = execute_scenario(&spec).unwrap();
        spec.demand.seed = 43;
        let b = execute_scenario(&spec).unwrap();
        assert_ne!(
            a.demand_multiplier, b.demand_multiplier,
            "a different synthetic world must change the demand normalization"
        );
    }

    #[test]
    fn attack_reduces_capacity_and_is_reported() {
        let mut spec = tiny_spec();
        spec.design.kinds = vec!["ss"];
        spec.attack.planes_lost = 2;
        let report = execute_scenario(&spec).unwrap();
        let ss = report.system("ss").unwrap();
        let attack = ss.attack.as_ref().expect("attack stage ran");
        assert!(attack.planes_lost <= 2);
        assert!(attack.capacity_retained < 1.0);
        assert!(attack.sats_lost > 0);
    }

    #[test]
    fn leading_planes_attack_matches_the_historical_selection() {
        // The parity pin the redesign promises: the default attack kind
        // with `attack.planes_lost` destroys exactly the satellites of
        // the historically strided plane indices.
        use ssplane_lsn::disruption::strided_plane_indices;
        let mut spec = tiny_spec();
        spec.design.kinds = vec!["ss"];
        spec.radiation.enabled = false;
        spec.survivability.enabled = false;
        let designer = designer_for("ss", &spec.design);
        let model = shared_demand_model(spec.demand.seed);
        let grid = LatTodGrid::from_model(&model, spec.demand.lat_bins, spec.demand.tod_bins)
            .unwrap()
            .scaled(1.0);
        let sys = designer.design(&grid, &DesignParams { epoch: spec.radiation.epoch() }).unwrap();
        for planes_lost in [0usize, 1, 2, 5, 1000] {
            spec.attack.planes_lost = planes_lost;
            let destroyed = attack_destroyed(&spec, &sys, spec.radiation.epoch()).unwrap();
            let expect: Vec<SatId> = strided_plane_indices(sys.planes.len(), planes_lost)
                .into_iter()
                .flat_map(|p| (0..sys.planes[p].n_sats).map(move |s| SatId { plane: p, slot: s }))
                .collect();
            assert_eq!(destroyed, expect, "planes_lost = {planes_lost}");
        }
    }

    #[test]
    fn zero_plane_attack_stays_silent() {
        // `attack.planes_lost = 0` under the default kind must produce no
        // attack block at all — the golden fixtures' contract.
        let mut spec = tiny_spec();
        spec.design.kinds = vec!["ss"];
        spec.attack.planes_lost = 0;
        let report = execute_scenario(&spec).unwrap();
        let ss = report.system("ss").unwrap();
        assert!(ss.attack.is_none());
        assert!(!report.to_json_line().contains("attack"));
    }

    /// A hand-built 1-plane system (no designer produces one for a full
    /// diurnal demand, so the edge case is exercised directly).
    fn one_plane_system() -> DesignedSystem {
        use ssplane_core::system::SystemPlane;
        let epoch = tiny_spec().radiation.epoch();
        let orbit = ssplane_astro::sunsync::sun_synchronous_orbit(560.0).unwrap();
        let satellites = orbit.with_ltan(10.5).plane_elements(epoch, 12).unwrap();
        DesignedSystem {
            summary: DesignSummary {
                sats: 12,
                planes: 1,
                shells: 1,
                sats_per_plane: 12,
                inclination_deg: 97.6,
                unserved_demand: 0.0,
            },
            eval_groups: vec![(satellites[0], 12)],
            planes: vec![SystemPlane { n_sats: 12, eval_idx: 0, satellites }],
            network_order: vec![0],
        }
    }

    #[test]
    fn one_plane_system_attack_and_survivability() {
        // A 1-plane system under a 1-plane attack is the smallest
        // wipeout: the attack block and the availability-0 outcome must
        // both appear — and with the attack off, the same system's
        // survivability must be intact.
        let mut spec = tiny_spec();
        spec.attack.planes_lost = 1;
        let sys = one_plane_system();
        let env = RadiationEnvironment::default();
        let epoch = spec.radiation.epoch();
        let destroyed = attack_destroyed(&spec, &sys, epoch).unwrap();
        assert_eq!(destroyed.len(), 12, "the whole plane is the whole fleet");
        let mut clock = StageClock { stages: Vec::new(), metrics: Vec::new() };
        let (report, doses) =
            system_report(&spec, "ss", &sys, &destroyed, &env, epoch, true, &mut clock).unwrap();
        let attack = report.attack.as_ref().expect("attack ran");
        assert_eq!(attack.planes_lost, 1);
        assert_eq!(attack.sats_lost, 12);
        assert_eq!(attack.capacity_retained, 0.0);
        let surv = report.survivability.as_ref().expect("wipeout outcome present");
        assert_eq!(surv.availability, 0.0);
        assert_eq!(surv.initial_spares, 0);
        assert_eq!(doses.map(|d| d.len()), Some(1));

        spec.attack.planes_lost = 0;
        let (unharmed, _) =
            system_report(&spec, "ss", &sys, &[], &env, epoch, true, &mut clock).unwrap();
        assert!(unharmed.attack.is_none());
        let surv = unharmed.survivability.as_ref().unwrap();
        assert!(surv.availability > 0.0);
        assert_eq!(surv.initial_spares, 3, "one plane's per-plane budget");
    }

    #[test]
    fn random_and_band_attacks_run_end_to_end() {
        use crate::spec::AttackKind;
        let mut spec = tiny_spec();
        spec.design.kinds = vec!["ss"];
        spec.attack.kind = AttackKind::RandomSats;
        spec.attack.sats_lost = 25;
        let report = execute_scenario(&spec).unwrap();
        let attack = report.system("ss").unwrap().attack.as_ref().expect("random attack ran");
        assert_eq!(attack.sats_lost, 25);
        assert!(attack.capacity_retained < 1.0);
        // A partial random loss rarely wipes whole planes, but the
        // survivability stage still runs on the reduced fleet.
        assert!(report.system("ss").unwrap().survivability.is_some());

        spec.attack.kind = AttackKind::DeclinationBand;
        spec.attack.band_min_deg = -10.0;
        spec.attack.band_max_deg = 10.0;
        let report = execute_scenario(&spec).unwrap();
        let attack = report.system("ss").unwrap().attack.as_ref().expect("band attack ran");
        assert!(attack.sats_lost > 0, "a polar design crosses the equator band");
        assert!(attack.sats_lost < report.system("ss").unwrap().design.sats);

        // Determinism: the seeded random attack reproduces byte-for-byte.
        spec.attack.kind = AttackKind::RandomSats;
        let a = execute_scenario(&spec).unwrap().to_json_line();
        let b = execute_scenario(&spec).unwrap().to_json_line();
        assert_eq!(a, b);
    }

    #[test]
    fn shell_attack_and_weibull_process() {
        use crate::spec::{AttackKind, FailureKind};
        let mut spec = tiny_spec();
        spec.design.kinds = vec!["wd"];
        spec.attack.kind = AttackKind::Shell;
        spec.attack.shell = 0;
        spec.survivability.failure_kind = FailureKind::Weibull;
        let report = execute_scenario(&spec).unwrap();
        let wd = report.system("wd").unwrap();
        let attack = wd.attack.as_ref().expect("shell attack ran");
        assert!(attack.sats_lost > 0);
        assert!(attack.planes_lost > 0, "a Walker shell is whole planes");
        let surv = wd.survivability.as_ref().expect("weibull survivability ran");
        assert!((0.0..=1.0).contains(&surv.availability));
        // An out-of-range shell is a per-scenario error, not a crash.
        spec.attack.shell = 500;
        assert!(execute_scenario(&spec).is_err());
    }

    #[test]
    fn with_outages_adds_the_degraded_block() {
        let mut spec = tiny_spec();
        spec.design.kinds = vec!["ss"];
        spec.attack.planes_lost = 2;
        spec.network.enabled = true;
        spec.network.n_flows = 30;
        spec.network.slots = 2;
        spec.network.time_grid_slots = 8;
        spec.network.time_grid_slot_s = 240.0;

        // Baseline without the switch: no degraded block, bytes as ever.
        spec.network.with_outages = false;
        let intact = execute_scenario(&spec).unwrap();
        let inet = intact.system("ss").unwrap().network.clone().unwrap();
        assert!(inet.degraded.is_none());
        assert!(!intact.to_json_line().contains("degraded"));

        spec.network.with_outages = true;
        let report = execute_scenario(&spec).unwrap();
        let net = report.system("ss").unwrap().network.clone().unwrap();
        let deg = net.degraded.expect("with_outages adds the block");
        assert_eq!(deg.slots, 8);
        assert!(deg.mean_alive_fraction < 1.0, "two planes plus outages are gone");
        assert!(deg.mean_alive_fraction > 0.0);
        assert!(deg.min_alive <= report.system("ss").unwrap().design.sats);
        assert!(deg.connected_slots <= 8);
        // The degraded network can never route more than the intact one.
        let tg = net.time_grid.as_ref().expect("multi-slot grid present");
        assert!(deg.mean_routed <= tg.mean_routed);
        assert!(deg.min_routed <= tg.min_routed);
        assert!((0.0..=1.0).contains(&deg.routed_fraction));
        // The intact headline fields are untouched by the switch.
        assert_eq!(net.routed, inet.routed);
        assert_eq!(net.mean_stretch, inet.mean_stretch);
        assert_eq!(
            net.time_grid.as_ref().unwrap(),
            inet.time_grid.as_ref().unwrap(),
            "the intact grid block must not change"
        );
        let line = report.to_json_line();
        assert!(line.contains(r#""degraded":{"slots":8"#), "{line}");

        // Byte determinism of the whole degraded pipeline.
        let again = execute_scenario(&spec).unwrap();
        assert_eq!(report.to_json_line(), again.to_json_line());
    }

    #[test]
    fn attack_only_outage_masking_needs_no_radiation() {
        // Degraded networking from the attack mask alone: radiation and
        // survivability off.
        let mut spec = tiny_spec();
        spec.design.kinds = vec!["ss"];
        spec.radiation.enabled = false;
        spec.survivability.enabled = false;
        spec.attack.planes_lost = 3;
        spec.network.enabled = true;
        spec.network.n_flows = 20;
        spec.network.slots = 2;
        spec.network.with_outages = true;
        let report = execute_scenario(&spec).unwrap();
        let net = report.system("ss").unwrap().network.clone().unwrap();
        let deg = net.degraded.expect("attack-only degraded block");
        assert_eq!(deg.slots, 1, "defaults to the single-slot grid");
        // With no timeline the mask is the attack alone: the alive
        // fraction equals the attack's capacity retention.
        let attack = report.system("ss").unwrap().attack.as_ref().unwrap();
        assert!((deg.mean_alive_fraction - attack.capacity_retained).abs() < 1e-12);
    }

    #[test]
    fn total_wipeout_reports_zero_availability() {
        let mut spec = tiny_spec();
        spec.design.kinds = vec!["ss"];
        spec.attack.planes_lost = 100_000;
        let report = execute_scenario(&spec).unwrap();
        let ss = report.system("ss").unwrap();
        let attack = ss.attack.as_ref().expect("attack ran");
        assert_eq!(attack.capacity_retained, 0.0);
        let surv =
            ss.survivability.as_ref().expect("wipeout is an availability-0 outcome, not a gap");
        assert_eq!(surv.availability, 0.0);
        // Vacancy-days cover surviving slots only (none here) — the
        // destroyed capacity lives in the attack report.
        assert_eq!(surv.lost_slot_days, 0.0);
    }

    #[test]
    fn percentile_is_true_nearest_rank() {
        // The issue's diverging pair: at n = 10, q = 0.5 nearest-rank is
        // the 5th value — the old rounded linear index returned the 6th.
        let sorted: Vec<f64> = (1..=10).map(f64::from).collect();
        assert_eq!(percentile(&sorted, 0.5), 5.0);
        assert_ne!(percentile(&sorted, 0.5), 6.0, "the pre-fix answer must be gone");
        assert_eq!(percentile(&sorted, 0.9), 9.0);
        assert_eq!(percentile(&sorted, 0.99), 10.0);
        assert_eq!(percentile(&sorted, 1.0), 10.0);
        assert_eq!(percentile(&sorted, 0.0), 1.0, "rank clamps to the first value");
        // ceil(0.5 * 4) = rank 2.
        assert_eq!(percentile(&[1.0, 2.0, 3.0, 4.0], 0.5), 2.0);
        assert_eq!(percentile(&[7.5], 0.5), 7.5);
        assert!(percentile(&[], 0.5).is_nan());
    }

    /// A traffic report carrying only per-flow outcomes (what the
    /// handoff accounting reads).
    fn traffic_with(outcomes: Vec<Option<ssplane_lsn::traffic::FlowOutcome>>) -> TrafficReport {
        TrafficReport {
            routed: outcomes.iter().flatten().count(),
            unrouted: outcomes.iter().filter(|o| o.is_none()).count(),
            link_load: std::collections::BTreeMap::new(),
            link_capacity: 1.0,
            mean_stretch: 1.0,
            mean_hops: 1.0,
            flow_outcomes: outcomes,
        }
    }

    #[test]
    fn time_grid_handoffs_reset_across_unroutable_gaps() {
        use ssplane_lsn::traffic::FlowOutcome;
        let sat = |p: usize, s: usize| SatId { plane: p, slot: s };
        let out = |ends: (SatId, SatId)| Some(FlowOutcome { delay_ms: 10.0, ends });
        let a = (sat(0, 0), sat(1, 0));
        let b = (sat(2, 2), sat(3, 2));
        // One flow: routed on pair a, unroutable, routed on pair b — the
        // gap resets the comparison, so 0 handoffs.
        let gapped = vec![
            (true, traffic_with(vec![out(a)])),
            (true, traffic_with(vec![None])),
            (true, traffic_with(vec![out(b)])),
        ];
        assert_eq!(time_grid_report(&gapped).handoffs, 0);
        // The same pair change on adjacent slots is one handoff.
        let adjacent = vec![
            (true, traffic_with(vec![out(a)])),
            (true, traffic_with(vec![out(b)])),
            (true, traffic_with(vec![None])),
        ];
        assert_eq!(time_grid_report(&adjacent).handoffs, 1);
        // Two flows: one churns without gaps (1 handoff), one only
        // across a gap (0) — per-flow accounting keeps them separate.
        let two = vec![
            (true, traffic_with(vec![out(a), out(a)])),
            (true, traffic_with(vec![out(b), None])),
            (true, traffic_with(vec![out(b), out(b)])),
        ];
        assert_eq!(time_grid_report(&two).handoffs, 1);
    }

    /// A 3-plane system with a permuted network order and an empty
    /// middle plane — the RGT-style layout the degraded-stage mapping
    /// has to survive.
    fn permuted_system() -> DesignedSystem {
        use ssplane_core::system::SystemPlane;
        let epoch = tiny_spec().radiation.epoch();
        let orbit = ssplane_astro::sunsync::sun_synchronous_orbit(560.0).unwrap();
        let plane = |ltan: f64, n: usize| SystemPlane {
            n_sats: n,
            eval_idx: 0,
            satellites: if n == 0 {
                Vec::new()
            } else {
                orbit.with_ltan(ltan).plane_elements(epoch, n).unwrap()
            },
        };
        DesignedSystem {
            summary: DesignSummary {
                sats: 5,
                planes: 3,
                shells: 1,
                sats_per_plane: 2,
                inclination_deg: 97.6,
                unserved_demand: 0.0,
            },
            eval_groups: vec![(orbit.with_ltan(8.0).plane_elements(epoch, 1).unwrap()[0], 5)],
            planes: vec![plane(8.0, 2), plane(10.0, 0), plane(12.0, 3)],
            // Network order reverses the planes; the empty plane 1 must
            // be dropped, exactly as Constellation::from_planes does.
            network_order: vec![2, 1, 0],
        }
    }

    #[test]
    fn network_layout_maps_permuted_orders_and_empty_planes() {
        let sys = permuted_system();
        let layout = network_layout(&sys);
        assert_eq!(layout.kept, vec![2, 0], "plane 1 is empty and dropped");
        assert_eq!(layout.net_plane_of_design, vec![1, usize::MAX, 0]);
        assert_eq!(layout.offsets, vec![0, 3]);
        assert_eq!(layout.plane_sats, vec![3, 2]);
        assert_eq!(layout.total, 5);
        // A destroyed design satellite masks the correct flat index
        // under the permutation: design plane 0 lands *after* design
        // plane 2 in the network layout.
        assert_eq!(layout.flat_of_design(SatId { plane: 0, slot: 1 }), Some(4));
        assert_eq!(layout.flat_of_design(SatId { plane: 2, slot: 2 }), Some(2));
        assert_eq!(layout.flat_of_design(SatId { plane: 1, slot: 0 }), None, "dropped plane");
        assert_eq!(layout.flat_of_design(SatId { plane: 0, slot: 9 }), None, "slot bound");
        assert_eq!(layout.flat_of_design(SatId { plane: 7, slot: 0 }), None, "plane bound");
        // Network-id -> design-id is the inverse on kept planes.
        assert_eq!(layout.design_id(SatId { plane: 0, slot: 2 }), SatId { plane: 2, slot: 2 });
        assert_eq!(layout.design_id(SatId { plane: 1, slot: 0 }), SatId { plane: 0, slot: 0 });
        // The layout agrees with the real network constellation.
        let epoch = tiny_spec().radiation.epoch();
        let c = Constellation::from_planes(epoch, sys.network_planes()).unwrap();
        assert_eq!(c.total_sats(), layout.total);
        assert_eq!(c.plane_offsets()[..2], layout.offsets[..]);
    }

    #[test]
    fn optimized_attack_beats_its_fixed_baseline_and_is_deterministic() {
        use crate::spec::{AttackKind, AttackUnit};
        let mut spec = tiny_spec();
        spec.design.kinds = vec!["ss"];
        spec.attack.kind = AttackKind::Optimized;
        spec.attack.unit = AttackUnit::Planes;
        spec.attack.budget = 2;
        spec.attack.restarts = 1;
        spec.attack.swaps = 3;
        spec.network.enabled = true;
        spec.network.n_flows = 30;
        spec.network.slots = 2;
        spec.network.time_grid_slots = 2;
        spec.network.time_grid_slot_s = 300.0;
        spec.network.with_outages = true;
        let (report, timings) = execute_scenario_timed(&spec);
        let report = report.unwrap();
        // The attack-search stage surfaces its scoring throughput as a
        // derived metric row (not summed into the stage total).
        let (_, rate) = timings
            .metrics
            .iter()
            .find(|(m, _)| m == "ss.attack_search.candidates_per_sec")
            .expect("throughput metric present");
        assert!(*rate > 0.0, "a finished search scored at a positive rate");
        assert!(
            timings.stages.iter().all(|(s, _)| !s.ends_with("candidates_per_sec")),
            "metric rows stay out of the wall-clock stages (and the total)"
        );
        let ss = report.system("ss").unwrap();
        let attack = ss.attack.as_ref().expect("optimized attack reports like any other");
        assert!(attack.sats_lost > 0);
        assert!(attack.planes_lost <= 2);
        assert!(attack.capacity_retained < 1.0);
        let search = ss.attack_search.as_ref().expect("the search block is present");
        assert_eq!(search.objective, "routed-fraction");
        assert_eq!(search.unit, "planes");
        assert_eq!(search.budget, 2);
        assert_eq!(search.baseline, "leading-planes");
        assert!(
            search.objective_value <= search.baseline_value,
            "the found attack ({}) must be at least as damaging as the same-budget \
             leading-planes baseline ({})",
            search.objective_value,
            search.baseline_value
        );
        assert!(search.objective_value <= search.intact_value);
        assert!(search.candidates_scored > 0);
        assert!(search.candidates_unique > 0);
        assert!(
            search.candidates_unique <= search.candidates_scored,
            "dedup can only shrink the count"
        );
        // The degraded block reflects the searched attack.
        let net = ss.network.as_ref().expect("network stage on");
        let deg = net.degraded.as_ref().expect("with_outages on");
        assert!(deg.mean_alive_fraction < 1.0);
        let line = report.to_json_line();
        assert!(line.contains(r#""attack_search":{"objective":"routed-fraction""#), "{line}");
        // Rerun determinism: the whole search is a pure function of the
        // spec.
        let again = execute_scenario(&spec).unwrap();
        assert_eq!(report.to_json_line(), again.to_json_line());

        // Survivability consumes the searched victims too: the stage
        // reports a degraded (non-intact) fleet outcome.
        assert!(ss.survivability.is_some());
    }

    #[test]
    fn optimized_satellite_budget_runs_with_random_baseline() {
        use crate::spec::{AttackKind, AttackUnit};
        let mut spec = tiny_spec();
        spec.design.kinds = vec!["ss"];
        spec.radiation.enabled = false;
        spec.survivability.enabled = false;
        spec.attack.kind = AttackKind::Optimized;
        spec.attack.unit = AttackUnit::Sats;
        spec.attack.budget = 8;
        spec.attack.restarts = 1;
        spec.attack.swaps = 3;
        spec.network.enabled = true;
        spec.network.n_flows = 20;
        spec.network.slots = 2;
        let report = execute_scenario(&spec).unwrap();
        let ss = report.system("ss").unwrap();
        let attack = ss.attack.as_ref().expect("attack block present");
        assert_eq!(attack.sats_lost, 8);
        let search = ss.attack_search.as_ref().unwrap();
        assert_eq!(search.unit, "sats");
        assert_eq!(search.baseline, "random-sats");
        assert!(search.objective_value <= search.baseline_value);
    }

    #[test]
    fn gravity_traffic_reports_served_demand_and_degrades_under_attack() {
        use crate::spec::TrafficModel;
        let mut spec = tiny_spec();
        spec.design.kinds = vec!["ss"];
        spec.radiation.enabled = false;
        spec.survivability.enabled = false;
        spec.network.enabled = true;
        spec.network.n_flows = 20;
        spec.network.slots = 2;
        spec.traffic.model = TrafficModel::Gravity;
        spec.traffic.pairs = 1500;
        spec.traffic.sites = 32;
        spec.traffic.capacity_gbps = 4.0;
        spec.traffic.k_paths = 2;
        let intact = execute_scenario(&spec).unwrap();
        let inet = intact.system("ss").unwrap().network.clone().expect("network on");
        let served = inet.served.as_ref().expect("gravity model adds the served block");
        assert_eq!(served.flows, 1500);
        assert!(served.pairs > 0, "aggregation found serving pairs");
        assert!((served.offered - spec.demand.total_demand_b).abs() < 1e-6 * served.offered);
        assert!(served.served_fraction > 0.0, "the intact network serves demand");
        assert!(served.served_fraction <= 1.0 + 1e-9);
        let parts = served.served_fraction + served.dropped_fraction + served.unattached_fraction;
        assert!((parts - 1.0).abs() < 1e-6, "accounting closes: {parts}");
        assert!(served.utilization_max <= 1.0 + 1e-9, "capacity is a hard cap");
        let line = intact.to_json_line();
        assert!(line.contains(r#""served":{"flows":1500"#), "{line}");

        // A concentrated ~10% plane loss cuts the served fraction in the
        // degraded pass.
        spec.attack.planes_lost = 2;
        spec.network.with_outages = true;
        let attacked = execute_scenario(&spec).unwrap();
        let anet = attacked.system("ss").unwrap().network.clone().unwrap();
        let deg = anet.degraded.expect("with_outages adds the block");
        let deg_served = deg.served_fraction.expect("gravity adds degraded served fields");
        let min_served = deg.min_served_fraction.unwrap();
        assert!(min_served <= deg_served);
        assert!(
            deg_served < served.served_fraction,
            "plane loss must cut served demand: {deg_served} vs {}",
            served.served_fraction
        );
        // The intact headline block is unchanged by the attack.
        assert_eq!(anet.served.as_ref(), Some(served));
        let line = attacked.to_json_line();
        assert!(line.contains(r#""served_fraction":"#), "{line}");

        // Byte determinism across reruns and runner thread counts.
        let again = execute_scenario(&spec).unwrap();
        assert_eq!(attacked.to_json_line(), again.to_json_line());
        let specs = vec![spec.clone()];
        let serial = Runner::with_threads(1).run_specs(&specs);
        let threaded = Runner::with_threads(7).run_specs(&specs);
        assert_eq!(serial.to_jsonl(), threaded.to_jsonl());
    }

    #[test]
    fn sampled_traffic_never_adds_served_blocks() {
        // The default traffic model leaves the report byte-identical to
        // the pre-engine engine: no served block anywhere.
        let mut spec = tiny_spec();
        spec.design.kinds = vec!["ss"];
        spec.radiation.enabled = false;
        spec.survivability.enabled = false;
        spec.network.enabled = true;
        spec.network.n_flows = 20;
        spec.network.slots = 2;
        spec.attack.planes_lost = 2;
        spec.network.with_outages = true;
        let report = execute_scenario(&spec).unwrap();
        let net = report.system("ss").unwrap().network.clone().unwrap();
        assert!(net.served.is_none());
        assert!(net.degraded.as_ref().unwrap().served_fraction.is_none());
        let line = report.to_json_line();
        assert!(!line.contains(r#""served""#), "{line}");
        assert!(!line.contains("served_fraction"), "{line}");
    }

    #[test]
    fn attack_runs_without_the_radiation_stage() {
        // Capacity bookkeeping needs no fluence data: a design-only
        // scenario still reports the attack outcome.
        let mut spec = tiny_spec();
        spec.radiation.enabled = false;
        spec.survivability.enabled = false;
        spec.attack.planes_lost = 2;
        let report = execute_scenario(&spec).unwrap();
        let ss = report.system("ss").unwrap();
        assert!(ss.fluence.is_none());
        let attack = ss.attack.as_ref().expect("attack must run in design-only scenarios");
        assert!(attack.capacity_retained < 1.0);
    }

    #[test]
    fn design_only_scenario_skips_downstream() {
        let mut spec = tiny_spec();
        spec.radiation.enabled = false;
        spec.survivability.enabled = false;
        let report = execute_scenario(&spec).unwrap();
        let ss = report.system("ss").unwrap();
        assert!(ss.fluence.is_none());
        assert!(ss.survivability.is_none());
    }

    #[test]
    fn shell_attack_on_the_catalog_destroys_exactly_one_shell() {
        // The multi-shell contract end to end through the scenario
        // surface: on the deployed-catalog designer, `attack.kind =
        // "shell"` must destroy exactly the chosen shell's satellites
        // (alive fraction = 1 − that shell's share), different shell
        // indices must produce different degraded outcomes, and the
        // degraded block must be rerun-byte-deterministic.
        use crate::spec::AttackKind;
        let mut spec = tiny_spec();
        spec.design.kinds = vec!["starlink"];
        // Large enough that the +grid routes flows: shells 0 and 1 are
        // structural twins (72×22 at 550/540 km), so only live routing
        // over their distinct geometries can tell their attacks apart.
        spec.design.starlink_scale = 0.3;
        spec.radiation.enabled = false;
        spec.survivability.enabled = false;
        spec.attack.kind = AttackKind::Shell;
        spec.network.enabled = true;
        spec.network.n_flows = 20;
        spec.network.slots = 2;
        spec.network.with_outages = true;

        // The catalog's shell structure, from the same designer the
        // pipeline will run.
        let designer = designer_for("starlink", &spec.design);
        let model = shared_demand_model(spec.demand.seed);
        let grid = LatTodGrid::from_model(&model, spec.demand.lat_bins, spec.demand.tod_bins)
            .unwrap()
            .scaled(1.0);
        let sys = designer.design(&grid, &DesignParams { epoch: spec.radiation.epoch() }).unwrap();
        let meta = sys.shell_meta();
        assert_eq!(meta.len(), 5, "the scaled catalog keeps all five deployed shells");
        let total: usize = meta.iter().map(|m| m.sats).sum();

        let mut lines = Vec::new();
        for (shell, m) in meta.iter().enumerate() {
            spec.attack.shell = shell;
            let report = execute_scenario(&spec).unwrap();
            let sys_report = report.system("starlink").expect("catalog system present");
            let attack = sys_report.attack.as_ref().expect("shell attack ran");
            assert_eq!(attack.sats_lost, m.sats, "shell {shell} loses its own sats");
            assert_eq!(attack.planes_lost, m.planes, "whole planes of shell {shell}");
            let share = m.sats as f64 / total as f64;
            assert!(
                (attack.capacity_retained - (1.0 - share)).abs() < 1e-12,
                "alive fraction must be 1 − shell share: {} vs {}",
                attack.capacity_retained,
                1.0 - share
            );
            let deg =
                sys_report.network.as_ref().unwrap().degraded.as_ref().expect("with_outages on");
            assert!((deg.mean_alive_fraction - (1.0 - share)).abs() < 1e-12);
            // Rerun determinism of the whole line, degraded block included.
            let line = report.to_json_line();
            assert_eq!(line, execute_scenario(&spec).unwrap().to_json_line());
            lines.push(line);
        }
        // Different shells are different attacks: no two degraded
        // outcomes (nor whole report lines) may coincide.
        for i in 0..lines.len() {
            for j in i + 1..lines.len() {
                assert_ne!(lines[i], lines[j], "shells {i} and {j} produced identical bytes");
            }
        }
        // Out-of-range shells error per scenario, exactly as on
        // single-shell systems.
        spec.attack.shell = meta.len();
        assert!(execute_scenario(&spec).is_err());
    }

    #[test]
    fn per_satellite_block_is_opt_in_and_normalizes_by_design_sats() {
        let mut spec = tiny_spec();
        spec.design.kinds = vec!["ss", "slim"];

        // Off by default: bytes carry no per_satellite key.
        let plain = execute_scenario(&spec).unwrap();
        assert!(plain
            .system("ss")
            .unwrap()
            .survivability
            .as_ref()
            .unwrap()
            .per_satellite
            .is_none());
        assert!(!plain.to_json_line().contains("per_satellite"));

        spec.survivability.per_satellite = true;
        let report = execute_scenario(&spec).unwrap();
        for name in ["ss", "slim"] {
            let sys = report.system(name).unwrap();
            let surv = sys.survivability.as_ref().unwrap();
            let per = surv.per_satellite.as_ref().expect("opt-in block present");
            assert_eq!(per.sats, sys.design.sats, "denominator is the designed fleet");
            let n = per.sats as f64;
            assert!((per.availability_per_ksat - surv.availability / n * 1000.0).abs() < 1e-12);
            assert!((per.lost_slot_days_per_sat - surv.lost_slot_days / n).abs() < 1e-12);
            assert!((per.spares_per_sat - surv.initial_spares as f64 / n).abs() < 1e-12);
        }
        let ss = report.system("ss").unwrap();
        let slim = report.system("slim").unwrap();
        let line = report.to_json_line();
        assert!(line.contains(r#""per_satellite":{"sats":"#), "{line}");
        // The switch changes nothing outside the survivability block.
        assert_eq!(ss.design, plain.system("ss").unwrap().design);
        assert_eq!(slim.network, plain.system("slim").unwrap().network);
    }
}
