//! The declarative description of one experiment: which constellation(s)
//! to design, against what demand, under which radiation environment,
//! with what failure/spare/mission assumptions, and which pipeline stages
//! to run.
//!
//! A [`ScenarioSpec`] is a plain value: building one never touches the
//! pipeline, and running one (see [`crate::runner`]) is a pure function
//! of the spec — the same spec always produces the same
//! [`crate::report::ScenarioReport`].

use crate::error::{Result, ScenarioError};
use ssplane_astro::time::Epoch;
use ssplane_core::designer::{BranchRule, DesignConfig};
use ssplane_core::rgt_analysis::RgtDesignConfig;
use ssplane_core::system::DESIGNER_REGISTRY;
use ssplane_core::walker_baseline::{SupplyModel, WalkerBaselineConfig};
use ssplane_lsn::disruption::{
    AttackModel, DeclinationBand, FailureProcess, LeadingPlanes, RadiationExponential, RandomSats,
    WeibullBathtub, WholeShell,
};
use ssplane_lsn::failures::FailureModel;
use ssplane_lsn::optimizer::{AttackBudget, AttackObjective, AttackSearchConfig};
use ssplane_lsn::spares::SparePolicy;
use ssplane_lsn::survivability::SurvivabilityConfig;

/// Accepted spellings of each canonical designer name, for specs written
/// against older tokens (`"walker"` predates the `wd` registry name).
const DESIGN_KIND_ALIASES: &[(&str, &str)] =
    &[("ss-plane", "ss"), ("ssplane", "ss"), ("walker", "wd"), ("wd", "wd")];

/// Resolves a `design.kind` token against the [`DESIGNER_REGISTRY`]:
/// the canonical names themselves plus the historical aliases. Adding a
/// `Designer` to the core registry makes its name parse here with no
/// spec edit.
///
/// # Errors
/// [`ScenarioError::BadValue`] listing the registered names, with a
/// did-you-mean hint when the token is a near miss.
pub fn resolve_design_kind(s: &str) -> Result<&'static str> {
    if let Some(&(_, canonical)) = DESIGN_KIND_ALIASES.iter().find(|&&(alias, _)| alias == s) {
        return Ok(canonical);
    }
    if let Some(&(name, _)) = DESIGNER_REGISTRY.iter().find(|&&(name, _)| name == s) {
        return Ok(name);
    }
    let names: Vec<&str> = DESIGNER_REGISTRY.iter().map(|&(n, _)| n).collect();
    let mut expected = names.join(" | ");
    let near = names
        .iter()
        .map(|&n| (edit_distance(s, n), n))
        .filter(|&(d, _)| d <= 3)
        .min()
        .map(|(_, n)| n);
    if let Some(hint) = near {
        expected = format!("{expected} — did you mean `{hint}`?");
    }
    Err(ScenarioError::bad_value("design.kind", s, &expected))
}

/// Parses a `design.kind` token into the canonical kinds list it
/// selects — any registered designer name plus the legacy `"both"`
/// (= SS + Walker, the pre-`design.kinds` spelling of the paper's
/// comparisons).
pub fn parse_design_kinds(s: &str) -> Result<Vec<&'static str>> {
    if s == "both" {
        return Ok(vec!["ss", "wd"]);
    }
    resolve_design_kind(s).map(|k| vec![k])
}

/// Plain Levenshtein distance for the did-you-mean hint (designer names
/// are short; the O(nm) table is fine).
fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    for (i, &ca) in a.iter().enumerate() {
        let mut cur = vec![i + 1];
        for (j, &cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur.push(sub.min(prev[j + 1] + 1).min(cur[j] + 1));
        }
        prev = cur;
    }
    prev[b.len()]
}

/// Parses a [`BranchRule`] config token.
pub fn parse_branch_rule(s: &str) -> Result<BranchRule> {
    match s {
        "best-of-both" => Ok(BranchRule::BestOfBoth),
        "ascending-only" => Ok(BranchRule::AscendingOnly),
        "alternate" => Ok(BranchRule::Alternate),
        other => Err(ScenarioError::bad_value(
            "design.branch_rule",
            other,
            "best-of-both | ascending-only | alternate",
        )),
    }
}

/// Canonical token for a [`BranchRule`].
pub fn branch_rule_str(rule: BranchRule) -> &'static str {
    match rule {
        BranchRule::BestOfBoth => "best-of-both",
        BranchRule::AscendingOnly => "ascending-only",
        BranchRule::Alternate => "alternate",
    }
}

/// Parses a [`SupplyModel`] config token.
pub fn parse_supply_model(s: &str) -> Result<SupplyModel> {
    match s {
        "worst-case" => Ok(SupplyModel::WorstCase),
        "time-average" => Ok(SupplyModel::TimeAverage),
        other => Err(ScenarioError::bad_value(
            "design.walker_supply_model",
            other,
            "worst-case | time-average",
        )),
    }
}

/// Constellation-design stage configuration: the designer knobs for every
/// system, embedded as the *actual* designer config structs so a
/// scenario run is bit-for-bit the same design the hand-written pipelines
/// produce.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignSpec {
    /// Which systems to design, as canonical [`DESIGNER_REGISTRY`]
    /// names. Execution and reporting always follow registry order with
    /// duplicates collapsed, so the list's order never changes the
    /// output bytes.
    pub kinds: Vec<&'static str>,
    /// SS-plane designer configuration.
    pub ss: DesignConfig,
    /// Walker-baseline designer configuration.
    pub wd: WalkerBaselineConfig,
    /// RGT designer configuration.
    pub rgt: RgtDesignConfig,
    /// Fraction of each Walker shell's planes the `slim` designer keeps,
    /// in `(0, 1]` (`design.slim_plane_factor`).
    pub slim_plane_factor: f64,
    /// Plane floor per shell after slimming (`design.slim_min_planes`).
    pub slim_min_planes: usize,
    /// Uniform down-scale of the `starlink` catalog in `(0, 1]`
    /// (`design.starlink_scale`; `1.0` is the full deployed catalog).
    pub starlink_scale: f64,
}

impl DesignSpec {
    /// The kinds to execute, in registry order with duplicates collapsed.
    pub fn ordered_kinds(&self) -> Vec<&'static str> {
        DESIGNER_REGISTRY
            .iter()
            .map(|&(name, _)| name)
            .filter(|name| self.kinds.contains(name))
            .collect()
    }

    /// Whether `kind` is selected.
    pub fn includes(&self, kind: &str) -> bool {
        self.kinds.contains(&kind)
    }
}

impl Default for DesignSpec {
    fn default() -> Self {
        DesignSpec {
            kinds: vec!["ss", "wd"],
            ss: DesignConfig::default(),
            wd: WalkerBaselineConfig::default(),
            rgt: RgtDesignConfig::default(),
            slim_plane_factor: 0.5,
            slim_min_planes: 3,
            starlink_scale: 1.0,
        }
    }
}

/// Demand-model stage configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct DemandSpec {
    /// Total bandwidth demand, in multiples of one satellite's capacity
    /// (Fig. 9's x-axis). The synthetic demand grid is normalized so its
    /// total equals this.
    pub total_demand_b: f64,
    /// Latitude bins of the sun-relative demand grid.
    pub lat_bins: usize,
    /// Time-of-day bins of the sun-relative demand grid.
    pub tod_bins: usize,
    /// Seed of the synthetic demand synthesis (city placement). Scenarios
    /// sharing a seed share one synthesized model per process.
    pub seed: u64,
}

impl Default for DemandSpec {
    fn default() -> Self {
        // The paper's Fig. 8 resolution (5° × 1 h) at a mid-range demand;
        // seed 42 is the synthetic model's historical default.
        DemandSpec { total_demand_b: 200.0, lat_bins: 36, tod_bins: 24, seed: 42 }
    }
}

/// Solar-activity setting of the radiation environment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SolarActivity {
    /// Mid solar cycle 24 at the scenario's epoch (the figures' default).
    #[default]
    Cycle24,
    /// Force the epoch to the cycle-24 activity maximum (storm-time
    /// electron enhancement: the sustainability worst case).
    Max,
    /// Force the epoch to deep solar minimum.
    Min,
}

impl SolarActivity {
    /// Canonical config-file token.
    pub fn as_str(self) -> &'static str {
        match self {
            SolarActivity::Cycle24 => "cycle24",
            SolarActivity::Max => "max",
            SolarActivity::Min => "min",
        }
    }

    /// Parses the config-file token.
    pub fn parse(s: &str) -> Result<Self> {
        match s {
            "cycle24" | "mid" => Ok(SolarActivity::Cycle24),
            "max" | "solar-max" => Ok(SolarActivity::Max),
            "min" | "solar-min" => Ok(SolarActivity::Min),
            other => Err(ScenarioError::bad_value("radiation.solar", other, "cycle24 | max | min")),
        }
    }
}

/// Radiation/fluence stage configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct RadiationSpec {
    /// Whether to run the fluence stage at all (design-only sweeps skip
    /// it; survivability requires it).
    pub enabled: bool,
    /// Solar-cycle setting; [`SolarActivity::Cycle24`] evaluates at the
    /// configured epoch, Max/Min override the epoch to the cycle extreme.
    pub solar: SolarActivity,
    /// Evaluation epoch as `(year, month, day)` UTC midnight. The default
    /// is the figures' reference epoch (2013-06-01, mid cycle 24).
    pub epoch_ymd: (i32, u32, u32),
    /// Orbit phases sampled per plane for the fluence statistics (the
    /// Fig. 10 sampling knob).
    pub phases: usize,
    /// Fluence integration step \[s\].
    pub step_s: f64,
}

impl Default for RadiationSpec {
    fn default() -> Self {
        RadiationSpec {
            enabled: true,
            solar: SolarActivity::Cycle24,
            epoch_ymd: (2013, 6, 1),
            phases: 2,
            step_s: 60.0,
        }
    }
}

impl RadiationSpec {
    /// The concrete evaluation epoch: the configured calendar date for
    /// [`SolarActivity::Cycle24`], or the cycle-24 activity extreme for
    /// Max/Min (computed from the cycle's phase envelope: the maximum sits
    /// at 40% of the period, the minimum at its start).
    pub fn epoch(&self) -> Epoch {
        let cycle = ssplane_radiation::solar::SolarCycle::cycle24();
        match self.solar {
            SolarActivity::Cycle24 => {
                let (y, m, d) = self.epoch_ymd;
                Epoch::from_calendar(y, m, d, 0, 0, 0.0)
            }
            SolarActivity::Max => cycle.start + 0.4 * cycle.period_days * 86_400.0,
            SolarActivity::Min => cycle.start + 0.02 * cycle.period_days * 86_400.0,
        }
    }
}

/// The failure-process family the survivability stage samples lifetimes
/// from — the spec's name for a
/// [`FailureProcess`] implementation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FailureKind {
    /// The radiation-driven exponential (the historical model).
    #[default]
    Exponential,
    /// The Weibull bathtub: infant mortality plus dose-accelerated
    /// wear-out.
    Weibull,
}

impl FailureKind {
    /// Canonical config-file token.
    pub fn as_str(self) -> &'static str {
        match self {
            FailureKind::Exponential => "exponential",
            FailureKind::Weibull => "weibull",
        }
    }

    /// Parses the config-file token.
    pub fn parse(s: &str) -> Result<Self> {
        match s {
            "exponential" | "radiation-exponential" => Ok(FailureKind::Exponential),
            "weibull" | "bathtub" => Ok(FailureKind::Weibull),
            other => Err(ScenarioError::bad_value(
                "survivability.failure.kind",
                other,
                "exponential | weibull",
            )),
        }
    }
}

/// Failure-and-spares stage configuration (the survivability simulation).
#[derive(Debug, Clone, PartialEq)]
pub struct SurvivabilitySpec {
    /// Whether to run the survivability simulation (requires the
    /// radiation stage).
    pub enabled: bool,
    /// Which failure process samples satellite lifetimes.
    pub failure_kind: FailureKind,
    /// Radiation-driven exponential hazard model (the
    /// [`FailureKind::Exponential`] parameters, configured by the
    /// `failures.*` keys).
    pub failure: FailureModel,
    /// Bathtub parameters (the [`FailureKind::Weibull`] parameters,
    /// configured by the `survivability.failure.*` keys).
    pub weibull: WeibullBathtub,
    /// Spare-provisioning policy.
    pub policy: SparePolicy,
    /// Mission horizon \[years\].
    pub horizon_years: f64,
    /// Resupply cadence \[days\].
    pub resupply_days: f64,
    /// Whether to add the `per_satellite` block to the survivability
    /// report: the same outcomes normalized by constellation size, the
    /// design-shootout's survivability-per-satellite score. Off by
    /// default so pre-existing reports keep their bytes.
    pub per_satellite: bool,
}

impl Default for SurvivabilitySpec {
    fn default() -> Self {
        SurvivabilitySpec {
            enabled: true,
            failure_kind: FailureKind::default(),
            failure: FailureModel::default(),
            weibull: WeibullBathtub::default(),
            policy: SparePolicy::PerPlane { spares_per_plane: 3, replacement_days: 3.0 },
            horizon_years: 5.0,
            resupply_days: 180.0,
            per_satellite: false,
        }
    }
}

impl SurvivabilitySpec {
    /// The `ssplane-lsn` simulation config for a scenario seeded with
    /// `seed`.
    pub fn sim_config(&self, seed: u64) -> SurvivabilityConfig {
        SurvivabilityConfig {
            horizon_years: self.horizon_years,
            resupply_days: self.resupply_days,
            seed,
        }
    }

    /// The configured [`FailureProcess`], from the registry the
    /// `survivability.failure.kind` key names.
    pub fn process(&self) -> Box<dyn FailureProcess> {
        match self.failure_kind {
            FailureKind::Exponential => Box::new(RadiationExponential { model: self.failure }),
            FailureKind::Weibull => Box::new(self.weibull),
        }
    }
}

/// The attack family the attack stage applies — the spec's name for an
/// [`AttackModel`] implementation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AttackKind {
    /// Whole-plane loss at evenly strided plane indices (the historical
    /// `attack.planes_lost` semantics, byte-compatible).
    #[default]
    LeadingPlanes,
    /// Seeded uniform random satellite loss.
    RandomSats,
    /// Regional loss: every satellite inside a declination band at the
    /// scenario epoch (a debris-event signature).
    DeclinationBand,
    /// Loss of one whole evaluation shell (an SS plane, a Walker shell,
    /// or the RGT track).
    Shell,
    /// Adversarially *searched* loss: a seeded greedy + random-restart
    /// search ([`ssplane_lsn::optimizer`]) for the worst k-plane /
    /// k-satellite set against a degraded-network objective. Requires the
    /// network stage (the objective is a network metric).
    Optimized,
}

impl AttackKind {
    /// Canonical config-file token.
    pub fn as_str(self) -> &'static str {
        match self {
            AttackKind::LeadingPlanes => "leading-planes",
            AttackKind::RandomSats => "random-sats",
            AttackKind::DeclinationBand => "declination-band",
            AttackKind::Shell => "shell",
            AttackKind::Optimized => "optimized",
        }
    }

    /// Parses the config-file token.
    pub fn parse(s: &str) -> Result<Self> {
        match s {
            "leading-planes" | "planes" => Ok(AttackKind::LeadingPlanes),
            "random-sats" | "random" => Ok(AttackKind::RandomSats),
            "declination-band" | "band" => Ok(AttackKind::DeclinationBand),
            "shell" => Ok(AttackKind::Shell),
            "optimized" | "worst-case" => Ok(AttackKind::Optimized),
            other => Err(ScenarioError::bad_value(
                "attack.kind",
                other,
                "leading-planes | random-sats | declination-band | shell | optimized",
            )),
        }
    }
}

/// The candidate-set unit of an optimized attack search.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AttackUnit {
    /// Search over whole-plane sets.
    #[default]
    Planes,
    /// Search over individual-satellite sets.
    Sats,
}

impl AttackUnit {
    /// Canonical config-file token.
    pub fn as_str(self) -> &'static str {
        match self {
            AttackUnit::Planes => "planes",
            AttackUnit::Sats => "sats",
        }
    }

    /// Parses the config-file token.
    pub fn parse(s: &str) -> Result<Self> {
        match s {
            "planes" => Ok(AttackUnit::Planes),
            "sats" | "satellites" => Ok(AttackUnit::Sats),
            other => Err(ScenarioError::bad_value("attack.unit", other, "planes | sats")),
        }
    }
}

/// Parses an `attack.objective` token into the optimizer's objective.
pub fn parse_objective(s: &str) -> Result<AttackObjective> {
    match s {
        "routed-fraction" | "routed" => Ok(AttackObjective::RoutedFraction),
        "connectivity" => Ok(AttackObjective::Connectivity),
        "load-inflation" | "load" => Ok(AttackObjective::LoadInflation),
        "served-demand" | "served" => Ok(AttackObjective::ServedDemand),
        "masking-threshold" | "masking" => Ok(AttackObjective::MaskingThreshold),
        other => Err(ScenarioError::bad_value(
            "attack.objective",
            other,
            "routed-fraction | connectivity | load-inflation | served-demand | masking-threshold",
        )),
    }
}

/// The population-scale traffic workload family the network stage runs —
/// the spec's name for how `traffic.*` demand is synthesized.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TrafficModel {
    /// The classic demand-weighted flow sample (`network.n_flows` unit
    /// flows): no capacity-constrained engine, byte-compatible with every
    /// pre-engine scenario.
    #[default]
    Sampled,
    /// The seeded gravity model over the population grid
    /// ([`ssplane_demand::gravity`]): `traffic.pairs` city-pair flows
    /// with real rate weights, aggregated by serving-satellite pair and
    /// assigned under per-link capacities — the served-demand metric.
    Gravity,
}

impl TrafficModel {
    /// Canonical config-file token.
    pub fn as_str(self) -> &'static str {
        match self {
            TrafficModel::Sampled => "sampled",
            TrafficModel::Gravity => "gravity",
        }
    }

    /// Parses the config-file token.
    pub fn parse(s: &str) -> Result<Self> {
        match s {
            "sampled" | "flows" => Ok(TrafficModel::Sampled),
            "gravity" => Ok(TrafficModel::Gravity),
            other => Err(ScenarioError::bad_value("traffic.model", other, "sampled | gravity")),
        }
    }
}

/// Population-scale traffic-engine configuration (the `traffic.*` keys).
/// Only consulted when the network stage is enabled; the default
/// [`TrafficModel::Sampled`] runs no engine at all, so every scenario
/// without a `[traffic]` section reports exactly as before.
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficSpec {
    /// Which workload family to synthesize.
    pub model: TrafficModel,
    /// City-pair flows the gravity model draws ([`TrafficModel::Gravity`]).
    pub pairs: usize,
    /// Gravity attraction sites: the top population cells flows are drawn
    /// between ([`TrafficModel::Gravity`]).
    pub sites: usize,
    /// Per-ISL capacity in satellite-capacity units (the same units as
    /// `demand.total_demand_b`; the workload's total offered rate is
    /// normalized to `demand.total_demand_b`).
    pub capacity_gbps: f64,
    /// Candidate paths per serving-satellite pair for the
    /// capacity-constrained splitting.
    pub k_paths: usize,
}

impl Default for TrafficSpec {
    fn default() -> Self {
        TrafficSpec {
            model: TrafficModel::Sampled,
            pairs: 100_000,
            sites: 256,
            capacity_gbps: 1.0,
            k_paths: 3,
        }
    }
}

/// The attack stage: a pluggable [`AttackModel`] destroys part of the
/// constellation before the survivability simulation, the capacity it
/// retains is reported, and — with `network.with_outages` — the degraded
/// network is evaluated over the masked fleet.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AttackSpec {
    /// Which attack model to apply.
    pub kind: AttackKind,
    /// Whole planes lost ([`AttackKind::LeadingPlanes`]; 0 disables the
    /// attack under that kind, preserving the historical semantics).
    pub planes_lost: usize,
    /// Satellites lost ([`AttackKind::RandomSats`]).
    pub sats_lost: usize,
    /// Band lower edge \[deg\] ([`AttackKind::DeclinationBand`]).
    pub band_min_deg: f64,
    /// Band upper edge \[deg\] ([`AttackKind::DeclinationBand`]).
    pub band_max_deg: f64,
    /// Evaluation-shell index to destroy ([`AttackKind::Shell`]).
    pub shell: usize,
    /// Degraded-network objective the search minimizes
    /// ([`AttackKind::Optimized`]).
    pub objective: AttackObjective,
    /// Candidate-set unit of the search ([`AttackKind::Optimized`]).
    pub unit: AttackUnit,
    /// Planes or satellites the searched attack may destroy
    /// ([`AttackKind::Optimized`]; clamped to the constellation).
    pub budget: usize,
    /// Random-restart local searches after the greedy construction
    /// ([`AttackKind::Optimized`]).
    pub restarts: usize,
    /// Swap proposals per search start point ([`AttackKind::Optimized`]).
    pub swaps: usize,
    /// Damage-threshold fraction of the incremental candidate scorer
    /// ([`AttackKind::Optimized`]): shortest-path-tree repairs touching
    /// more than this fraction of the constellation fall back to a full
    /// recompute. Purely a performance knob — results are byte-identical
    /// either way. In `(0, 1]`.
    pub damage_threshold: f64,
}

impl Default for AttackSpec {
    fn default() -> Self {
        AttackSpec {
            kind: AttackKind::default(),
            planes_lost: 0,
            sats_lost: 0,
            band_min_deg: -20.0,
            band_max_deg: 20.0,
            shell: 0,
            objective: AttackObjective::RoutedFraction,
            unit: AttackUnit::Planes,
            budget: 2,
            restarts: 3,
            swaps: 16,
            damage_threshold: ssplane_lsn::optimizer::DEFAULT_REPAIR_THRESHOLD,
        }
    }
}

impl AttackSpec {
    /// Whether the attack stage runs. [`AttackKind::LeadingPlanes`] with
    /// `planes_lost = 0` stays inactive (the historical "0 disables"
    /// contract the golden fixtures pin); every explicitly selected
    /// non-default kind is active, even if it happens to destroy
    /// nothing — a sweep's zero-loss point still gets its attack block.
    pub fn is_active(&self) -> bool {
        self.kind != AttackKind::LeadingPlanes || self.planes_lost > 0
    }

    /// The configured *fixed* [`AttackModel`], from the registry the
    /// `attack.kind` key names — `None` for [`AttackKind::Optimized`],
    /// whose destroyed set is a search outcome (driven by the network
    /// stage in the runner), not a pure function of the geometry.
    pub fn fixed_model(&self) -> Option<Box<dyn AttackModel>> {
        match self.kind {
            AttackKind::LeadingPlanes => {
                Some(Box::new(LeadingPlanes { planes_lost: self.planes_lost }))
            }
            AttackKind::RandomSats => Some(Box::new(RandomSats { sats_lost: self.sats_lost })),
            AttackKind::DeclinationBand => Some(Box::new(DeclinationBand {
                min_deg: self.band_min_deg,
                max_deg: self.band_max_deg,
            })),
            AttackKind::Shell => Some(Box::new(WholeShell { shell: self.shell })),
            AttackKind::Optimized => None,
        }
    }

    /// The optimizer configuration of an [`AttackKind::Optimized`] spec;
    /// `threads` caps candidate-scoring workers (`0` = the machine).
    pub fn search_config(&self, threads: usize) -> AttackSearchConfig {
        AttackSearchConfig {
            objective: self.objective,
            budget: match self.unit {
                AttackUnit::Planes => AttackBudget::Planes(self.budget),
                AttackUnit::Sats => AttackBudget::Sats(self.budget),
            },
            restarts: self.restarts,
            swaps: self.swaps,
            threads,
        }
    }
}

/// Traffic/routing stage configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkSpec {
    /// Whether to run the networking stage (builds ISL topologies per
    /// slot, for every designed system with satellites).
    pub enabled: bool,
    /// Number of demand-weighted ground flows to route.
    pub n_flows: usize,
    /// UTC hour at which flows are sampled.
    pub utc_hour: f64,
    /// Minimum terminal elevation \[deg\] for up/downlinks (the routing
    /// examples' 20°, more permissive than the design elevation).
    pub min_elevation_deg: f64,
    /// Maximum ISL range \[km\].
    pub max_range_km: f64,
    /// Time slots of the time-expanded reference route.
    pub slots: usize,
    /// Slot spacing \[s\].
    pub slot_s: f64,
    /// Slots of the traffic time grid: the whole topology + traffic
    /// stage is evaluated at this many instants starting at `utc_hour`,
    /// all fed from one shared [`SnapshotSeries`] propagation cache.
    /// `1` (the default) is the classic single-instant stage; `> 1` adds
    /// the time-resolved `time_grid` block to the network report.
    ///
    /// [`SnapshotSeries`]: ssplane_lsn::snapshot::SnapshotSeries
    pub time_grid_slots: usize,
    /// Spacing of the traffic time grid \[s\].
    pub time_grid_slot_s: f64,
    /// Whether to also evaluate the **degraded** network: the attack's
    /// destroyed set plus (when survivability is enabled) an outage
    /// timeline mask each grid slot's snapshot, and the per-slot
    /// degraded connectivity / routed fraction / load inflation is
    /// reported next to the intact baseline. Slot `k` of the grid
    /// samples the outage timeline at mission fraction `(k + 0.5) /
    /// slots`, so the grid doubles as a mission-life sampler.
    pub with_outages: bool,
    /// Whether to run the percolation stage: loss-fraction sweeps per
    /// attack model over the intact per-slot topologies (union-find
    /// replay, no re-propagation), algebraic connectivity λ₂ of the
    /// intact network, and the masking threshold of each targeted
    /// ordering against the random-loss baseline.
    pub percolation: bool,
    /// Loss-fraction steps of each percolation sweep (the curve has
    /// `steps + 1` points from 0 % to 100 % loss).
    pub percolation_steps: usize,
    /// Masking-threshold gap: the giant-component shortfall (vs the
    /// surviving fraction, and vs the random baseline) that counts as
    /// detected damage. In (0, 1).
    pub percolation_gap: f64,
}

impl Default for NetworkSpec {
    fn default() -> Self {
        NetworkSpec {
            enabled: false,
            n_flows: 200,
            utc_hour: 12.0,
            min_elevation_deg: 20.0,
            max_range_km: 5000.0,
            slots: 8,
            slot_s: 60.0,
            time_grid_slots: 1,
            time_grid_slot_s: 60.0,
            with_outages: false,
            percolation: false,
            percolation_steps: ssplane_lsn::percolation::DEFAULT_PERCOLATION_STEPS,
            percolation_gap: ssplane_lsn::percolation::DEFAULT_MASKING_GAP,
        }
    }
}

/// One fully-specified experiment.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ScenarioSpec {
    /// Human-readable scenario name (propagated into the report; sweep
    /// expansion appends the grid coordinates).
    pub name: String,
    /// Base RNG seed. Every stochastic stage derives its stream from this
    /// and the scenario's sweep coordinates — see
    /// [`crate::sweep::scenario_seed`].
    pub seed: u64,
    /// Constellation design stage.
    pub design: DesignSpec,
    /// Demand stage.
    pub demand: DemandSpec,
    /// Radiation stage.
    pub radiation: RadiationSpec,
    /// Survivability stage.
    pub survivability: SurvivabilitySpec,
    /// Plane-loss attack.
    pub attack: AttackSpec,
    /// Networking stage.
    pub network: NetworkSpec,
    /// Population-scale traffic engine (rides the networking stage).
    pub traffic: TrafficSpec,
}

impl ScenarioSpec {
    /// A named spec with all defaults (the paper's baseline setup).
    pub fn named(name: &str) -> Self {
        ScenarioSpec { name: name.to_string(), seed: 42, ..Default::default() }
    }

    /// Validates cross-field constraints before a run.
    ///
    /// # Errors
    /// [`ScenarioError::BadValue`] on the first violated constraint.
    pub fn validate(&self) -> Result<()> {
        // `positive` deliberately rejects NaN alongside non-positives.
        let positive = |x: f64| x.is_finite() && x > 0.0;
        if !positive(self.demand.total_demand_b) {
            return Err(ScenarioError::bad_value(
                "demand.total_demand_b",
                &self.demand.total_demand_b.to_string(),
                "> 0",
            ));
        }
        if self.demand.lat_bins == 0 || self.demand.tod_bins == 0 {
            return Err(ScenarioError::bad_value("demand.bins", "0", "> 0"));
        }
        if self.radiation.enabled && !positive(self.radiation.step_s) {
            return Err(ScenarioError::bad_value(
                "radiation.step_s",
                &self.radiation.step_s.to_string(),
                "> 0",
            ));
        }
        if self.survivability.enabled && !self.radiation.enabled {
            return Err(ScenarioError::bad_value(
                "survivability.enabled",
                "true",
                "radiation.enabled = true (the failure model is fluence-driven)",
            ));
        }
        if self.design.kinds.is_empty() {
            return Err(ScenarioError::bad_value("design.kinds", "[]", "at least one design kind"));
        }
        let unit = |x: f64| x.is_finite() && x > 0.0 && x <= 1.0;
        if self.design.includes("slim") {
            if !unit(self.design.slim_plane_factor) {
                return Err(ScenarioError::bad_value(
                    "design.slim_plane_factor",
                    &self.design.slim_plane_factor.to_string(),
                    "a fraction in (0, 1]",
                ));
            }
            if self.design.slim_min_planes == 0 {
                return Err(ScenarioError::bad_value("design.slim_min_planes", "0", ">= 1"));
            }
        }
        if self.design.includes("starlink") && !unit(self.design.starlink_scale) {
            return Err(ScenarioError::bad_value(
                "design.starlink_scale",
                &self.design.starlink_scale.to_string(),
                "a fraction in (0, 1]",
            ));
        }
        if self.survivability.enabled && !positive(self.survivability.horizon_years) {
            return Err(ScenarioError::bad_value(
                "survivability.horizon_years",
                &self.survivability.horizon_years.to_string(),
                "> 0",
            ));
        }
        if self.attack.kind == AttackKind::DeclinationBand
            && !(self.attack.band_min_deg.is_finite()
                && self.attack.band_max_deg.is_finite()
                && self.attack.band_min_deg <= self.attack.band_max_deg)
        {
            return Err(ScenarioError::bad_value(
                "attack.band_min_deg/band_max_deg",
                &format!("[{}, {}]", self.attack.band_min_deg, self.attack.band_max_deg),
                "a finite band with band_min_deg <= band_max_deg",
            ));
        }
        if self.attack.kind == AttackKind::Optimized && !self.network.enabled {
            return Err(ScenarioError::bad_value(
                "attack.kind",
                "optimized",
                "network.enabled = true (the search scores candidates by a degraded-network \
                 objective)",
            ));
        }
        if !positive(self.traffic.capacity_gbps) {
            return Err(ScenarioError::bad_value(
                "traffic.capacity_gbps",
                &self.traffic.capacity_gbps.to_string(),
                "> 0",
            ));
        }
        if self.traffic.k_paths == 0 {
            return Err(ScenarioError::bad_value("traffic.k_paths", "0", ">= 1"));
        }
        if self.traffic.model == TrafficModel::Gravity {
            if self.traffic.pairs == 0 {
                return Err(ScenarioError::bad_value("traffic.pairs", "0", ">= 1"));
            }
            if self.traffic.sites < 2 {
                return Err(ScenarioError::bad_value(
                    "traffic.sites",
                    &self.traffic.sites.to_string(),
                    ">= 2 (the gravity model needs distinct endpoints)",
                ));
            }
        }
        if self.attack.kind == AttackKind::Optimized
            && self.attack.objective == AttackObjective::ServedDemand
            && self.traffic.model != TrafficModel::Gravity
        {
            return Err(ScenarioError::bad_value(
                "attack.objective",
                "served-demand",
                "traffic.model = \"gravity\" (the objective scores the capacity-constrained \
                 engine's served fraction)",
            ));
        }
        if self.network.enabled {
            if self.network.time_grid_slots == 0 {
                return Err(ScenarioError::bad_value("network.time_grid_slots", "0", ">= 1"));
            }
            if self.network.time_grid_slots > 1 && !positive(self.network.time_grid_slot_s) {
                return Err(ScenarioError::bad_value(
                    "network.time_grid_slot_s",
                    &self.network.time_grid_slot_s.to_string(),
                    "> 0 for a multi-slot time grid",
                ));
            }
            if self.network.with_outages && !self.attack.is_active() && !self.survivability.enabled
            {
                return Err(ScenarioError::bad_value(
                    "network.with_outages",
                    "true",
                    "an active attack or survivability.enabled = true (otherwise the degraded \
                     network is the intact network)",
                ));
            }
            if self.network.percolation {
                if self.network.percolation_steps == 0 {
                    return Err(ScenarioError::bad_value("network.percolation_steps", "0", ">= 1"));
                }
                let gap = self.network.percolation_gap;
                if !(gap.is_finite() && gap > 0.0 && gap < 1.0) {
                    return Err(ScenarioError::bad_value(
                        "network.percolation_gap",
                        &gap.to_string(),
                        "a fraction in (0, 1)",
                    ));
                }
            }
        } else if self.network.percolation {
            return Err(ScenarioError::bad_value(
                "network.percolation",
                "true",
                "network.enabled = true (the sweep replays the network stage's topologies)",
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        ScenarioSpec::named("x").validate().unwrap();
    }

    #[test]
    fn token_round_trips() {
        for &(name, _) in DESIGNER_REGISTRY {
            assert_eq!(resolve_design_kind(name).unwrap(), name);
            assert_eq!(parse_design_kinds(name).unwrap(), vec![name]);
        }
        // Historical aliases still resolve to their canonical names.
        assert_eq!(resolve_design_kind("walker").unwrap(), "wd");
        assert_eq!(resolve_design_kind("ss-plane").unwrap(), "ss");
        assert_eq!(resolve_design_kind("ssplane").unwrap(), "ss");
        assert_eq!(
            parse_design_kinds("both").unwrap(),
            vec!["ss", "wd"],
            "legacy 'both' keeps meaning the paper's SS-vs-Walker pair"
        );
        for sol in [SolarActivity::Cycle24, SolarActivity::Max, SolarActivity::Min] {
            assert_eq!(SolarActivity::parse(sol.as_str()).unwrap(), sol);
        }
        for rule in [BranchRule::BestOfBoth, BranchRule::AscendingOnly, BranchRule::Alternate] {
            assert_eq!(parse_branch_rule(branch_rule_str(rule)).unwrap(), rule);
        }
        assert!(resolve_design_kind("sparkle").is_err());
        // Near misses get a did-you-mean hint naming the closest
        // registered designer.
        let err = resolve_design_kind("starlnk").unwrap_err().to_string();
        assert!(err.contains("did you mean `starlink`"), "{err}");
        let err = resolve_design_kind("slin").unwrap_err().to_string();
        assert!(err.contains("did you mean `slim`"), "{err}");
    }

    #[test]
    fn survivability_requires_radiation() {
        let mut spec = ScenarioSpec::named("x");
        spec.radiation.enabled = false;
        assert!(spec.validate().is_err());
        spec.survivability.enabled = false;
        spec.validate().unwrap();
    }

    #[test]
    fn networking_valid_for_every_design_kind() {
        // The SS-only restriction is gone: the network stage runs over
        // any designed system's plane geometry.
        let mut spec = ScenarioSpec::named("x");
        spec.network.enabled = true;
        for &(kind, _) in DESIGNER_REGISTRY {
            spec.design.kinds = vec![kind];
            spec.validate().unwrap();
        }
    }

    #[test]
    fn empty_kinds_rejected_and_ordering_is_canonical() {
        let mut spec = ScenarioSpec::named("x");
        spec.design.kinds = Vec::new();
        assert!(spec.validate().is_err());
        spec.design.kinds = vec!["rgt", "ss", "rgt"];
        spec.validate().unwrap();
        assert_eq!(spec.design.ordered_kinds(), vec!["ss", "rgt"]);
        assert!(spec.design.includes("rgt"));
        assert!(!spec.design.includes("wd"));
        spec.design.kinds = vec!["starlink", "slim", "ss"];
        assert_eq!(spec.design.ordered_kinds(), vec!["ss", "slim", "starlink"]);
    }

    #[test]
    fn slim_and_starlink_knobs_validated_when_selected() {
        let mut spec = ScenarioSpec::named("x");
        spec.design.kinds = vec!["slim", "starlink"];
        spec.validate().unwrap();
        for bad in [0.0, -1.0, 1.5, f64::NAN] {
            spec.design.slim_plane_factor = bad;
            assert!(spec.validate().is_err(), "slim_plane_factor {bad}");
        }
        spec.design.slim_plane_factor = 0.5;
        spec.design.slim_min_planes = 0;
        assert!(spec.validate().is_err());
        spec.design.slim_min_planes = 3;
        for bad in [0.0, 2.0, f64::NAN] {
            spec.design.starlink_scale = bad;
            assert!(spec.validate().is_err(), "starlink_scale {bad}");
        }
        spec.design.starlink_scale = 0.25;
        spec.validate().unwrap();
        // Unselected designers do not police their knobs.
        spec.design.kinds = vec!["ss"];
        spec.design.starlink_scale = 0.0;
        spec.design.slim_plane_factor = 0.0;
        spec.validate().unwrap();
    }

    #[test]
    fn time_grid_validation() {
        let mut spec = ScenarioSpec::named("x");
        spec.network.enabled = true;
        spec.validate().unwrap();
        spec.network.time_grid_slots = 0;
        assert!(spec.validate().is_err());
        spec.network.time_grid_slots = 4;
        spec.network.time_grid_slot_s = 0.0;
        assert!(spec.validate().is_err());
        spec.network.time_grid_slot_s = 120.0;
        spec.validate().unwrap();
        // A disabled network stage does not police its grid.
        spec.network.enabled = false;
        spec.network.time_grid_slots = 0;
        spec.validate().unwrap();
    }

    #[test]
    fn attack_and_failure_tokens_round_trip() {
        for kind in [
            AttackKind::LeadingPlanes,
            AttackKind::RandomSats,
            AttackKind::DeclinationBand,
            AttackKind::Shell,
        ] {
            assert_eq!(AttackKind::parse(kind.as_str()).unwrap(), kind);
            // The registry name of the configured model matches the token.
            let spec = AttackSpec { kind, ..Default::default() };
            assert_eq!(spec.fixed_model().expect("fixed kind").name(), kind.as_str());
        }
        // The optimized kind parses but has no fixed model: its destroyed
        // set is a search outcome, not a geometry function.
        assert_eq!(AttackKind::parse("optimized").unwrap(), AttackKind::Optimized);
        let optimized = AttackSpec { kind: AttackKind::Optimized, ..Default::default() };
        assert!(optimized.fixed_model().is_none());
        assert!(optimized.is_active());
        assert!(AttackKind::parse("emp").is_err());
        for kind in [FailureKind::Exponential, FailureKind::Weibull] {
            assert_eq!(FailureKind::parse(kind.as_str()).unwrap(), kind);
            let spec = SurvivabilitySpec { failure_kind: kind, ..Default::default() };
            assert_eq!(spec.process().name(), kind.as_str());
        }
        assert!(FailureKind::parse("lognormal").is_err());
    }

    #[test]
    fn attack_activity_rules() {
        let mut spec = AttackSpec::default();
        assert!(!spec.is_active(), "default leading-planes with 0 planes stays off");
        spec.planes_lost = 2;
        assert!(spec.is_active());
        for kind in [AttackKind::RandomSats, AttackKind::DeclinationBand, AttackKind::Shell] {
            let spec = AttackSpec { kind, ..Default::default() };
            assert!(spec.is_active(), "{kind:?} is active when selected");
        }
    }

    #[test]
    fn with_outages_needs_a_disruption_source() {
        let mut spec = ScenarioSpec::named("x");
        spec.network.enabled = true;
        spec.network.with_outages = true;
        spec.validate().unwrap(); // survivability is on by default
        spec.survivability.enabled = false;
        assert!(spec.validate().is_err(), "no attack and no survivability");
        spec.attack.planes_lost = 1;
        spec.validate().unwrap(); // attack-only masking is fine
                                  // A disabled network stage does not police the switch.
        spec.attack.planes_lost = 0;
        spec.network.enabled = false;
        spec.validate().unwrap();
    }

    #[test]
    fn percolation_needs_the_network_stage_and_sane_knobs() {
        let mut spec = ScenarioSpec::named("x");
        spec.network.percolation = true;
        assert!(spec.validate().is_err(), "percolation rides the network stage");
        spec.network.enabled = true;
        spec.validate().unwrap();
        spec.network.percolation_steps = 0;
        assert!(spec.validate().is_err(), "a sweep needs at least one step");
        spec.network.percolation_steps = 8;
        for bad in [0.0, 1.0, -0.25, f64::NAN] {
            spec.network.percolation_gap = bad;
            assert!(spec.validate().is_err(), "gap {bad} must be in (0, 1)");
        }
        spec.network.percolation_gap = 0.1;
        spec.validate().unwrap();
        // A disabled percolation stage does not police its knobs.
        spec.network.percolation = false;
        spec.network.percolation_steps = 0;
        spec.validate().unwrap();
    }

    #[test]
    fn optimized_attack_tokens_and_search_config() {
        use ssplane_lsn::optimizer::{AttackBudget, AttackObjective};
        for (token, objective) in [
            ("routed-fraction", AttackObjective::RoutedFraction),
            ("connectivity", AttackObjective::Connectivity),
            ("load-inflation", AttackObjective::LoadInflation),
            ("served-demand", AttackObjective::ServedDemand),
            ("masking-threshold", AttackObjective::MaskingThreshold),
        ] {
            assert_eq!(parse_objective(token).unwrap(), objective);
            assert_eq!(objective.as_str(), token, "token round trip");
        }
        assert!(parse_objective("chaos").is_err());
        for unit in [AttackUnit::Planes, AttackUnit::Sats] {
            assert_eq!(AttackUnit::parse(unit.as_str()).unwrap(), unit);
        }
        assert!(AttackUnit::parse("shells").is_err());
        let spec = AttackSpec {
            kind: AttackKind::Optimized,
            unit: AttackUnit::Sats,
            budget: 9,
            restarts: 5,
            swaps: 7,
            ..Default::default()
        };
        let config = spec.search_config(3);
        assert_eq!(config.budget, AttackBudget::Sats(9));
        assert_eq!(config.restarts, 5);
        assert_eq!(config.swaps, 7);
        assert_eq!(config.threads, 3);
        assert_eq!(
            AttackSpec { unit: AttackUnit::Planes, budget: 4, ..spec }.search_config(0).budget,
            AttackBudget::Planes(4)
        );
    }

    #[test]
    fn optimized_attack_requires_the_network_stage() {
        let mut spec = ScenarioSpec::named("x");
        spec.attack.kind = AttackKind::Optimized;
        assert!(spec.validate().is_err(), "no network stage to score candidates against");
        spec.network.enabled = true;
        spec.validate().unwrap();
    }

    #[test]
    fn traffic_tokens_round_trip_and_validation_rules() {
        for model in [TrafficModel::Sampled, TrafficModel::Gravity] {
            assert_eq!(TrafficModel::parse(model.as_str()).unwrap(), model);
        }
        assert!(TrafficModel::parse("antigravity").is_err());

        let mut spec = ScenarioSpec::named("x");
        spec.traffic.capacity_gbps = 0.0;
        assert!(spec.validate().is_err(), "zero capacity rejected");
        spec.traffic.capacity_gbps = 2.0;
        spec.traffic.k_paths = 0;
        assert!(spec.validate().is_err(), "zero k_paths rejected");
        spec.traffic.k_paths = 2;
        spec.validate().unwrap();

        // Gravity needs a non-degenerate pair/site budget.
        spec.traffic.model = TrafficModel::Gravity;
        spec.traffic.pairs = 0;
        assert!(spec.validate().is_err());
        spec.traffic.pairs = 100;
        spec.traffic.sites = 1;
        assert!(spec.validate().is_err());
        spec.traffic.sites = 16;
        spec.validate().unwrap();
    }

    #[test]
    fn served_demand_objective_requires_the_gravity_model() {
        let mut spec = ScenarioSpec::named("x");
        spec.network.enabled = true;
        spec.attack.kind = AttackKind::Optimized;
        spec.attack.objective = AttackObjective::ServedDemand;
        assert!(spec.validate().is_err(), "no gravity workload to score");
        spec.traffic.model = TrafficModel::Gravity;
        spec.validate().unwrap();
        // A non-optimized attack never consults the objective.
        spec.traffic.model = TrafficModel::Sampled;
        spec.attack.kind = AttackKind::LeadingPlanes;
        spec.validate().unwrap();
    }

    #[test]
    fn inverted_declination_band_rejected() {
        let mut spec = ScenarioSpec::named("x");
        spec.attack.kind = AttackKind::DeclinationBand;
        spec.attack.band_min_deg = 30.0;
        spec.attack.band_max_deg = -30.0;
        assert!(spec.validate().is_err());
        spec.attack.band_max_deg = 45.0;
        spec.validate().unwrap();
    }

    #[test]
    fn solar_extremes_move_the_epoch() {
        let mut spec = RadiationSpec::default();
        let mid = spec.epoch();
        spec.solar = SolarActivity::Max;
        let max = spec.epoch();
        spec.solar = SolarActivity::Min;
        let min = spec.epoch();
        let cycle = ssplane_radiation::solar::SolarCycle::cycle24();
        assert!(cycle.activity(max) > 0.8, "max activity {}", cycle.activity(max));
        assert!(cycle.activity(min) < 0.25, "min activity {}", cycle.activity(min));
        assert_ne!(mid, max);
    }
}
