//! Sweep expansion: a base [`ScenarioSpec`] plus parameter axes become a
//! list of concrete scenarios, each with a deterministic seed.
//!
//! Two properties the determinism tests pin down:
//!
//! * **Seeds ignore grid order.** A scenario's seed is a hash of the base
//!   seed and its *sorted* `(parameter, value)` overrides, so swapping
//!   axis declaration order (which permutes the cartesian enumeration)
//!   still assigns each parameter combination the same seed.
//! * **Expansion is pure.** The same `SweepSpec` always expands to the
//!   same scenarios in the same order.

use crate::error::{Result, ScenarioError};
use crate::spec::{
    parse_branch_rule, parse_design_kinds, parse_objective, parse_supply_model,
    resolve_design_kind, AttackKind, AttackUnit, FailureKind, ScenarioSpec, SolarActivity,
    TrafficModel,
};
use crate::toml::TomlValue;
use ssplane_lsn::spares::SparePolicy;

/// One sweep axis: a dotted parameter path and the values it takes.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepAxis {
    /// Dotted parameter path, e.g. `demand.total_demand_b`.
    pub param: String,
    /// The values the axis enumerates.
    pub values: Vec<TomlValue>,
}

/// A parameter grid over a base scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSpec {
    /// The scenario every grid point starts from.
    pub base: ScenarioSpec,
    /// The axes, in declaration order (last axis varies fastest).
    pub axes: Vec<SweepAxis>,
}

impl SweepSpec {
    /// A degenerate sweep: just the base scenario.
    pub fn single(base: ScenarioSpec) -> Self {
        SweepSpec { base, axes: Vec::new() }
    }

    /// Number of grid points (0 if any axis has no values, matching
    /// [`SweepSpec::expand`]).
    pub fn len(&self) -> usize {
        self.axes.iter().map(|a| a.values.len()).product()
    }

    /// Whether the grid is empty (an axis with no values).
    pub fn is_empty(&self) -> bool {
        self.axes.iter().any(|a| a.values.is_empty())
    }

    /// Expands the grid into concrete scenarios (row-major: the last axis
    /// varies fastest). Each scenario gets `name = base.name +
    /// sorted-override suffix` and `seed = scenario_seed(...)`; every
    /// expanded spec is validated.
    ///
    /// # Errors
    /// Unknown parameters, un-coercible values, reserved axes (`name`,
    /// `seed` — both are assigned by the expansion itself, so sweeping
    /// them would be silently overwritten), or invalid expanded specs.
    pub fn expand(&self) -> Result<Vec<ScenarioSpec>> {
        for axis in &self.axes {
            if axis.param == "seed" || axis.param == "name" {
                return Err(ScenarioError::bad_value(
                    &axis.param,
                    "a sweep axis",
                    "a non-reserved parameter (expansion derives per-scenario names and seeds \
                     from the grid coordinates, so sweeping them would be overwritten)",
                ));
            }
        }
        if self.is_empty() {
            return Ok(Vec::new());
        }
        let n = self.len();
        let mut out = Vec::with_capacity(n);
        for flat in 0..n {
            // Decode the row-major grid coordinate.
            let mut rem = flat;
            let mut overrides: Vec<(String, TomlValue)> = Vec::with_capacity(self.axes.len());
            for axis in self.axes.iter().rev() {
                let k = rem % axis.values.len();
                rem /= axis.values.len();
                overrides.push((axis.param.clone(), axis.values[k].clone()));
            }
            overrides.reverse();

            let mut spec = self.base.clone();
            for (param, value) in &overrides {
                apply_param(&mut spec, param, value)?;
            }
            let mut sorted: Vec<(String, TomlValue)> = overrides.clone();
            sorted.sort_by(|a, b| a.0.cmp(&b.0));
            spec.seed = scenario_seed(self.base.seed, &sorted);
            if !sorted.is_empty() {
                let suffix: Vec<String> =
                    sorted.iter().map(|(k, v)| format!("{k}={}", canonical_value(v))).collect();
                spec.name = format!("{}/{}", self.base.name, suffix.join(","));
            }
            spec.validate()?;
            out.push(spec);
        }
        Ok(out)
    }
}

/// Canonical textual form of a value — the form hashed into the seed, so
/// `10`, `10.0`, and `1e1` all mean the same scenario.
pub fn canonical_value(v: &TomlValue) -> String {
    match v {
        TomlValue::Str(s) => s.clone(),
        TomlValue::Int(i) => format!("{}", *i as f64),
        TomlValue::Float(x) => format!("{x}"),
        TomlValue::Bool(b) => b.to_string(),
        TomlValue::Array(items) => {
            let inner: Vec<String> = items.iter().map(canonical_value).collect();
            format!("[{}]", inner.join(","))
        }
    }
}

/// Deterministic per-scenario seed: FNV-1a over the base seed and the
/// **sorted** `(param, value)` overrides. Stable across axis reordering,
/// platforms, and thread counts; `[]` returns the base seed unchanged.
pub fn scenario_seed(base_seed: u64, sorted_overrides: &[(String, TomlValue)]) -> u64 {
    if sorted_overrides.is_empty() {
        return base_seed;
    }
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
    };
    eat(&base_seed.to_le_bytes());
    for (param, value) in sorted_overrides {
        eat(param.as_bytes());
        eat(&[0x1f]);
        eat(canonical_value(value).as_bytes());
        eat(&[0x1e]);
    }
    h
}

fn need_f64(key: &str, v: &TomlValue) -> Result<f64> {
    v.as_f64().ok_or_else(|| ScenarioError::bad_value(key, &canonical_value(v), "a number"))
}

fn need_usize(key: &str, v: &TomlValue) -> Result<usize> {
    v.as_usize()
        .ok_or_else(|| ScenarioError::bad_value(key, &canonical_value(v), "a non-negative integer"))
}

fn need_str<'v>(key: &str, v: &'v TomlValue) -> Result<&'v str> {
    v.as_str().ok_or_else(|| ScenarioError::bad_value(key, &canonical_value(v), "a string"))
}

fn need_bool(key: &str, v: &TomlValue) -> Result<bool> {
    v.as_bool().ok_or_else(|| ScenarioError::bad_value(key, &canonical_value(v), "a boolean"))
}

/// Parses `"YYYY-MM-DD"` into `(year, month, day)`.
fn parse_ymd(key: &str, s: &str) -> Result<(i32, u32, u32)> {
    let parts: Vec<&str> = s.split('-').collect();
    let bad = || ScenarioError::bad_value(key, s, "a date 'YYYY-MM-DD'");
    if parts.len() != 3 {
        return Err(bad());
    }
    let y: i32 = parts[0].parse().map_err(|_| bad())?;
    let m: u32 = parts[1].parse().map_err(|_| bad())?;
    let d: u32 = parts[2].parse().map_err(|_| bad())?;
    // The astro crate's calendar conversion (Vallado) is only valid for
    // 1901-2099 and does no legality checking — an out-of-domain year or
    // an impossible date like 06-31 would map to a silently shifted
    // Julian date rather than an error, so both are rejected here.
    if !(1901..=2099).contains(&y) || !(1..=12).contains(&m) {
        return Err(ScenarioError::bad_value(key, s, "a date 'YYYY-MM-DD' with year 1901-2099"));
    }
    let leap = y % 4 == 0; // exact within 1901-2099 (2000 is a leap year)
    let days_in_month =
        [31, if leap { 29 } else { 28 }, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31][(m - 1) as usize];
    if d < 1 || d > days_in_month {
        return Err(ScenarioError::bad_value(
            key,
            s,
            "a calendar-legal date (that month has fewer days)",
        ));
    }
    Ok((y, m, d))
}

/// Applies one dotted-path override to a spec. This is the *entire*
/// config surface: the TOML loader funnels every `section.key` pair
/// through here, so config files and sweep axes can address exactly the
/// same knobs.
///
/// # Errors
/// [`ScenarioError::UnknownParameter`] for paths outside the surface,
/// [`ScenarioError::BadValue`] for un-coercible values.
pub fn apply_param(spec: &mut ScenarioSpec, key: &str, value: &TomlValue) -> Result<()> {
    match key {
        "name" => spec.name = need_str(key, value)?.to_string(),
        "seed" => {
            spec.seed = value.as_u64().ok_or_else(|| {
                ScenarioError::bad_value(key, &canonical_value(value), "a non-negative integer")
            })?;
        }

        // `design.kind` is the scalar spelling (kept for back-compat:
        // `"both"` still selects the paper's SS + Walker pair);
        // `design.kinds` is the open list form.
        "design.kind" => spec.design.kinds = parse_design_kinds(need_str(key, value)?)?,
        "design.kinds" => {
            let arr = value.as_array().ok_or_else(|| {
                ScenarioError::bad_value(key, &canonical_value(value), "an array of design kinds")
            })?;
            let mut kinds = Vec::with_capacity(arr.len());
            for item in arr {
                kinds.push(resolve_design_kind(need_str(key, item)?)?);
            }
            if kinds.is_empty() {
                return Err(ScenarioError::bad_value(key, "[]", "at least one design kind"));
            }
            spec.design.kinds = kinds;
        }
        "design.altitude_km" => {
            let alt = need_f64(key, value)?;
            spec.design.ss.altitude_km = alt;
            spec.design.wd.altitude_km = alt;
        }
        "design.min_elevation_deg" => {
            let elev = need_f64(key, value)?;
            spec.design.ss.min_elevation_deg = elev;
            spec.design.wd.min_elevation_deg = elev;
            spec.design.rgt.min_elevation_deg = elev;
        }
        "design.sat_capacity" => {
            let cap = need_f64(key, value)?;
            spec.design.ss.sat_capacity = cap;
            spec.design.wd.sat_capacity = cap;
            spec.design.rgt.sat_capacity = cap;
        }
        "design.rgt_revs" => {
            spec.design.rgt.revs = u32::try_from(need_usize(key, value)?).map_err(|_| {
                ScenarioError::bad_value(key, &canonical_value(value), "a small positive integer")
            })?;
        }
        "design.rgt_days" => {
            spec.design.rgt.days = u32::try_from(need_usize(key, value)?).map_err(|_| {
                ScenarioError::bad_value(key, &canonical_value(value), "a small positive integer")
            })?;
        }
        "design.rgt_inclination_deg" => {
            spec.design.rgt.inclination_deg = need_f64(key, value)?;
        }
        "design.max_planes" => spec.design.ss.max_planes = need_usize(key, value)?,
        "design.branch_rule" => {
            spec.design.ss.branch_rule = parse_branch_rule(need_str(key, value)?)?;
        }
        "design.walker_shell_spacing_km" => {
            spec.design.wd.shell_spacing_km = need_f64(key, value)?;
        }
        "design.walker_supply_model" => {
            spec.design.wd.supply_model = parse_supply_model(need_str(key, value)?)?;
        }
        "design.walker_inclinations_deg" => {
            let arr = value.as_array().ok_or_else(|| {
                ScenarioError::bad_value(key, &canonical_value(value), "an array of degrees")
            })?;
            let mut incs = Vec::with_capacity(arr.len());
            for item in arr {
                incs.push(need_f64(key, item)?);
            }
            if incs.is_empty() {
                return Err(ScenarioError::bad_value(key, "[]", "at least one inclination"));
            }
            spec.design.wd.candidate_inclinations_deg = incs;
        }
        "design.slim_plane_factor" => spec.design.slim_plane_factor = need_f64(key, value)?,
        "design.slim_min_planes" => spec.design.slim_min_planes = need_usize(key, value)?,
        "design.starlink_scale" => spec.design.starlink_scale = need_f64(key, value)?,

        "demand.total_demand_b" => spec.demand.total_demand_b = need_f64(key, value)?,
        "demand.lat_bins" => spec.demand.lat_bins = need_usize(key, value)?,
        "demand.tod_bins" => spec.demand.tod_bins = need_usize(key, value)?,
        "demand.seed" => {
            spec.demand.seed = value.as_u64().ok_or_else(|| {
                ScenarioError::bad_value(key, &canonical_value(value), "a non-negative integer")
            })?;
        }

        "radiation.enabled" => spec.radiation.enabled = need_bool(key, value)?,
        "radiation.solar" => spec.radiation.solar = SolarActivity::parse(need_str(key, value)?)?,
        "radiation.epoch" => spec.radiation.epoch_ymd = parse_ymd(key, need_str(key, value)?)?,
        "radiation.phases" => spec.radiation.phases = need_usize(key, value)?.max(1),
        "radiation.step_s" => spec.radiation.step_s = need_f64(key, value)?,

        "survivability.enabled" => spec.survivability.enabled = need_bool(key, value)?,
        "survivability.horizon_years" => {
            spec.survivability.horizon_years = need_f64(key, value)?;
        }
        "survivability.resupply_days" => {
            spec.survivability.resupply_days = need_f64(key, value)?;
        }
        "survivability.per_satellite" => {
            spec.survivability.per_satellite = need_bool(key, value)?;
        }
        "survivability.failure.kind" => {
            spec.survivability.failure_kind = FailureKind::parse(need_str(key, value)?)?;
        }
        "survivability.failure.infant_shape" => {
            spec.survivability.weibull.infant_shape = need_f64(key, value)?;
        }
        "survivability.failure.infant_scale_years" => {
            spec.survivability.weibull.infant_scale_years = need_f64(key, value)?;
        }
        "survivability.failure.wearout_shape" => {
            spec.survivability.weibull.wearout_shape = need_f64(key, value)?;
        }
        "survivability.failure.wearout_scale_years" => {
            spec.survivability.weibull.wearout_scale_years = need_f64(key, value)?;
        }
        "survivability.failure.electron_accel" => {
            spec.survivability.weibull.electron_accel = need_f64(key, value)?;
        }
        "survivability.failure.proton_accel" => {
            spec.survivability.weibull.proton_accel = need_f64(key, value)?;
        }
        "failures.baseline_per_year" => {
            spec.survivability.failure.baseline_per_year = need_f64(key, value)?;
        }
        "failures.electron_coeff" => {
            spec.survivability.failure.electron_coeff = need_f64(key, value)?;
        }
        "failures.proton_coeff" => {
            spec.survivability.failure.proton_coeff = need_f64(key, value)?;
        }

        "spares.policy" => {
            let (count, replacement_days) = policy_parts(&spec.survivability.policy);
            spec.survivability.policy = match need_str(key, value)? {
                "per-plane" => SparePolicy::PerPlane { spares_per_plane: count, replacement_days },
                "shared-pool" => SparePolicy::SharedPool { pool_size: count, replacement_days },
                other => {
                    return Err(ScenarioError::bad_value(key, other, "per-plane | shared-pool"))
                }
            };
        }
        "spares.count" => {
            let n = need_usize(key, value)?;
            spec.survivability.policy = match spec.survivability.policy {
                SparePolicy::PerPlane { replacement_days, .. } => {
                    SparePolicy::PerPlane { spares_per_plane: n, replacement_days }
                }
                SparePolicy::SharedPool { replacement_days, .. } => {
                    SparePolicy::SharedPool { pool_size: n, replacement_days }
                }
            };
        }
        "spares.replacement_days" => {
            let days = need_f64(key, value)?;
            spec.survivability.policy = match spec.survivability.policy {
                SparePolicy::PerPlane { spares_per_plane, .. } => {
                    SparePolicy::PerPlane { spares_per_plane, replacement_days: days }
                }
                SparePolicy::SharedPool { pool_size, .. } => {
                    SparePolicy::SharedPool { pool_size, replacement_days: days }
                }
            };
        }

        "attack.kind" => spec.attack.kind = AttackKind::parse(need_str(key, value)?)?,
        "attack.planes_lost" => spec.attack.planes_lost = need_usize(key, value)?,
        "attack.sats_lost" => spec.attack.sats_lost = need_usize(key, value)?,
        "attack.band_min_deg" => spec.attack.band_min_deg = need_f64(key, value)?,
        "attack.band_max_deg" => spec.attack.band_max_deg = need_f64(key, value)?,
        "attack.shell" => spec.attack.shell = need_usize(key, value)?,
        "attack.objective" => spec.attack.objective = parse_objective(need_str(key, value)?)?,
        "attack.unit" => spec.attack.unit = AttackUnit::parse(need_str(key, value)?)?,
        "attack.budget" => spec.attack.budget = need_usize(key, value)?,
        "attack.restarts" => spec.attack.restarts = need_usize(key, value)?,
        "attack.swaps" => spec.attack.swaps = need_usize(key, value)?,
        "attack.damage_threshold" => spec.attack.damage_threshold = need_f64(key, value)?,

        "network.enabled" => spec.network.enabled = need_bool(key, value)?,
        "network.with_outages" => spec.network.with_outages = need_bool(key, value)?,
        "network.n_flows" => spec.network.n_flows = need_usize(key, value)?,
        "network.utc_hour" => spec.network.utc_hour = need_f64(key, value)?,
        "network.min_elevation_deg" => spec.network.min_elevation_deg = need_f64(key, value)?,
        "network.max_range_km" => spec.network.max_range_km = need_f64(key, value)?,
        "network.slots" => spec.network.slots = need_usize(key, value)?,
        "network.slot_s" => spec.network.slot_s = need_f64(key, value)?,
        "network.time_grid_slots" => spec.network.time_grid_slots = need_usize(key, value)?,
        "network.time_grid_slot_s" => spec.network.time_grid_slot_s = need_f64(key, value)?,
        "network.percolation" => spec.network.percolation = need_bool(key, value)?,
        "network.percolation_steps" => spec.network.percolation_steps = need_usize(key, value)?,
        "network.percolation_gap" => spec.network.percolation_gap = need_f64(key, value)?,

        "traffic.model" => spec.traffic.model = TrafficModel::parse(need_str(key, value)?)?,
        "traffic.pairs" => spec.traffic.pairs = need_usize(key, value)?,
        "traffic.sites" => spec.traffic.sites = need_usize(key, value)?,
        "traffic.capacity_gbps" => spec.traffic.capacity_gbps = need_f64(key, value)?,
        "traffic.k_paths" => spec.traffic.k_paths = need_usize(key, value)?,

        _ => return Err(ScenarioError::UnknownParameter { key: key.to_string() }),
    }
    Ok(())
}

/// The `(count, replacement_days)` of either policy variant.
fn policy_parts(policy: &SparePolicy) -> (usize, f64) {
    match *policy {
        SparePolicy::PerPlane { spares_per_plane, replacement_days } => {
            (spares_per_plane, replacement_days)
        }
        SparePolicy::SharedPool { pool_size, replacement_days } => (pool_size, replacement_days),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn axis(param: &str, values: &[f64]) -> SweepAxis {
        SweepAxis {
            param: param.to_string(),
            values: values.iter().map(|&x| TomlValue::Float(x)).collect(),
        }
    }

    #[test]
    fn expansion_is_row_major_and_complete() {
        let sweep = SweepSpec {
            base: ScenarioSpec::named("g"),
            axes: vec![
                axis("demand.total_demand_b", &[10.0, 100.0]),
                axis("survivability.horizon_years", &[1.0, 2.0, 3.0]),
            ],
        };
        let specs = sweep.expand().unwrap();
        assert_eq!(specs.len(), 6);
        assert_eq!(specs[0].demand.total_demand_b, 10.0);
        assert_eq!(specs[0].survivability.horizon_years, 1.0);
        assert_eq!(specs[1].survivability.horizon_years, 2.0);
        assert_eq!(specs[3].demand.total_demand_b, 100.0);
        assert!(specs[0].name.contains("demand.total_demand_b=10"));
    }

    #[test]
    fn seeds_stable_under_axis_reordering() {
        let a = SweepSpec {
            base: ScenarioSpec::named("g"),
            axes: vec![
                axis("demand.total_demand_b", &[10.0, 100.0]),
                axis("survivability.horizon_years", &[1.0, 2.0]),
            ],
        };
        let b =
            SweepSpec { base: a.base.clone(), axes: vec![a.axes[1].clone(), a.axes[0].clone()] };
        let mut sa: Vec<(String, u64)> =
            a.expand().unwrap().into_iter().map(|s| (s.name, s.seed)).collect();
        let mut sb: Vec<(String, u64)> =
            b.expand().unwrap().into_iter().map(|s| (s.name, s.seed)).collect();
        sa.sort();
        sb.sort();
        assert_eq!(sa, sb);
    }

    #[test]
    fn seeds_distinct_across_points_and_int_float_agree() {
        let overrides_int = vec![("demand.total_demand_b".to_string(), TomlValue::Int(10))];
        let overrides_float = vec![("demand.total_demand_b".to_string(), TomlValue::Float(10.0))];
        assert_eq!(scenario_seed(1, &overrides_int), scenario_seed(1, &overrides_float));
        let other = vec![("demand.total_demand_b".to_string(), TomlValue::Float(20.0))];
        assert_ne!(scenario_seed(1, &overrides_int), scenario_seed(1, &other));
        assert_eq!(scenario_seed(9, &[]), 9);
    }

    #[test]
    fn unknown_parameter_rejected() {
        let mut spec = ScenarioSpec::named("x");
        let err = apply_param(&mut spec, "demand.flux_capacitor", &TomlValue::Int(1)).unwrap_err();
        assert!(matches!(err, ScenarioError::UnknownParameter { .. }));
    }

    #[test]
    fn design_kind_and_kinds_paths() {
        let mut spec = ScenarioSpec::named("x");
        apply_param(&mut spec, "design.kind", &TomlValue::Str("rgt".into())).unwrap();
        assert_eq!(spec.design.kinds, vec!["rgt"]);
        apply_param(&mut spec, "design.kind", &TomlValue::Str("both".into())).unwrap();
        assert_eq!(spec.design.kinds, vec!["ss", "wd"]);
        apply_param(&mut spec, "design.kind", &TomlValue::Str("starlink".into())).unwrap();
        assert_eq!(spec.design.kinds, vec!["starlink"]);
        let all = TomlValue::Array(vec![
            TomlValue::Str("rgt".into()),
            TomlValue::Str("ss".into()),
            TomlValue::Str("walker".into()),
            TomlValue::Str("slim".into()),
            TomlValue::Str("starlink".into()),
        ]);
        apply_param(&mut spec, "design.kinds", &all).unwrap();
        assert_eq!(spec.design.kinds, vec!["rgt", "ss", "wd", "slim", "starlink"]);
        assert!(apply_param(&mut spec, "design.kinds", &TomlValue::Array(vec![])).is_err());
        assert!(
            apply_param(&mut spec, "design.kinds", &TomlValue::Str("ss".into())).is_err(),
            "the list path needs an array (the scalar path is design.kind)"
        );
    }

    #[test]
    fn slim_starlink_and_per_satellite_paths() {
        let mut spec = ScenarioSpec::named("x");
        apply_param(&mut spec, "design.slim_plane_factor", &TomlValue::Float(0.4)).unwrap();
        apply_param(&mut spec, "design.slim_min_planes", &TomlValue::Int(2)).unwrap();
        apply_param(&mut spec, "design.starlink_scale", &TomlValue::Float(0.25)).unwrap();
        assert_eq!(spec.design.slim_plane_factor, 0.4);
        assert_eq!(spec.design.slim_min_planes, 2);
        assert_eq!(spec.design.starlink_scale, 0.25);
        apply_param(&mut spec, "survivability.per_satellite", &TomlValue::Bool(true)).unwrap();
        assert!(spec.survivability.per_satellite);
        assert!(apply_param(&mut spec, "survivability.per_satellite", &TomlValue::Int(1)).is_err());
        assert!(
            apply_param(&mut spec, "design.starlink_scale", &TomlValue::Str("x".into())).is_err()
        );
    }

    #[test]
    fn rgt_and_demand_seed_paths() {
        let mut spec = ScenarioSpec::named("x");
        apply_param(&mut spec, "design.rgt_revs", &TomlValue::Int(14)).unwrap();
        apply_param(&mut spec, "design.rgt_days", &TomlValue::Int(1)).unwrap();
        apply_param(&mut spec, "design.rgt_inclination_deg", &TomlValue::Float(55.0)).unwrap();
        assert_eq!(spec.design.rgt.revs, 14);
        assert_eq!(spec.design.rgt.days, 1);
        assert_eq!(spec.design.rgt.inclination_deg, 55.0);
        // The shared designer knobs reach the RGT config too.
        apply_param(&mut spec, "design.sat_capacity", &TomlValue::Float(2.0)).unwrap();
        apply_param(&mut spec, "design.min_elevation_deg", &TomlValue::Float(30.0)).unwrap();
        assert_eq!(spec.design.rgt.sat_capacity, 2.0);
        assert_eq!(spec.design.rgt.min_elevation_deg, 30.0);

        apply_param(&mut spec, "demand.seed", &TomlValue::Int(7)).unwrap();
        assert_eq!(spec.demand.seed, 7);
        assert!(apply_param(&mut spec, "demand.seed", &TomlValue::Float(-1.0)).is_err());
    }

    #[test]
    fn reserved_axes_rejected() {
        for reserved in ["seed", "name"] {
            let sweep = SweepSpec {
                base: ScenarioSpec::named("g"),
                axes: vec![SweepAxis {
                    param: reserved.to_string(),
                    values: vec![TomlValue::Int(1), TomlValue::Int(2)],
                }],
            };
            let err = sweep.expand().unwrap_err();
            assert!(matches!(err, ScenarioError::BadValue { .. }), "{reserved}: {err}");
        }
    }

    #[test]
    fn empty_axis_means_zero_points() {
        let sweep = SweepSpec {
            base: ScenarioSpec::named("g"),
            axes: vec![SweepAxis { param: "attack.planes_lost".to_string(), values: vec![] }],
        };
        assert!(sweep.is_empty());
        assert_eq!(sweep.len(), 0);
        assert_eq!(sweep.expand().unwrap().len(), 0);
    }

    #[test]
    fn epoch_year_outside_algorithm_domain_rejected() {
        let mut spec = ScenarioSpec::named("x");
        for bad in ["2150-06-01", "1850-06-01"] {
            let err = apply_param(&mut spec, "radiation.epoch", &TomlValue::Str(bad.to_string()))
                .unwrap_err();
            assert!(err.to_string().contains("1901-2099"), "{bad}: {err}");
        }
        apply_param(&mut spec, "radiation.epoch", &TomlValue::Str("2014-04-01".to_string()))
            .unwrap();
        assert_eq!(spec.radiation.epoch_ymd, (2014, 4, 1));
    }

    #[test]
    fn impossible_calendar_dates_rejected() {
        let mut spec = ScenarioSpec::named("x");
        for bad in ["2013-06-31", "2013-02-30", "2013-02-29", "2013-04-31"] {
            assert!(
                apply_param(&mut spec, "radiation.epoch", &TomlValue::Str(bad.to_string()))
                    .is_err(),
                "{bad} accepted"
            );
        }
        // Leap day on an actual leap year is fine.
        apply_param(&mut spec, "radiation.epoch", &TomlValue::Str("2016-02-29".to_string()))
            .unwrap();
        assert_eq!(spec.radiation.epoch_ymd, (2016, 2, 29));
    }

    #[test]
    fn network_time_grid_paths() {
        let mut spec = ScenarioSpec::named("x");
        apply_param(&mut spec, "network.time_grid_slots", &TomlValue::Int(6)).unwrap();
        apply_param(&mut spec, "network.time_grid_slot_s", &TomlValue::Float(300.0)).unwrap();
        assert_eq!(spec.network.time_grid_slots, 6);
        assert_eq!(spec.network.time_grid_slot_s, 300.0);
        assert!(apply_param(&mut spec, "network.time_grid_slots", &TomlValue::Float(1.5)).is_err());
    }

    #[test]
    fn disruption_paths() {
        let mut spec = ScenarioSpec::named("x");
        apply_param(&mut spec, "attack.kind", &TomlValue::Str("random-sats".into())).unwrap();
        apply_param(&mut spec, "attack.sats_lost", &TomlValue::Int(40)).unwrap();
        assert_eq!(spec.attack.kind, AttackKind::RandomSats);
        assert_eq!(spec.attack.sats_lost, 40);
        apply_param(&mut spec, "attack.kind", &TomlValue::Str("declination-band".into())).unwrap();
        apply_param(&mut spec, "attack.band_min_deg", &TomlValue::Float(-5.0)).unwrap();
        apply_param(&mut spec, "attack.band_max_deg", &TomlValue::Float(5.0)).unwrap();
        assert_eq!(spec.attack.band_min_deg, -5.0);
        apply_param(&mut spec, "attack.kind", &TomlValue::Str("shell".into())).unwrap();
        apply_param(&mut spec, "attack.shell", &TomlValue::Int(1)).unwrap();
        assert_eq!(spec.attack.shell, 1);
        assert!(apply_param(&mut spec, "attack.kind", &TomlValue::Str("emp".into())).is_err());

        apply_param(&mut spec, "survivability.failure.kind", &TomlValue::Str("weibull".into()))
            .unwrap();
        apply_param(&mut spec, "survivability.failure.wearout_shape", &TomlValue::Float(2.5))
            .unwrap();
        apply_param(
            &mut spec,
            "survivability.failure.infant_scale_years",
            &TomlValue::Float(300.0),
        )
        .unwrap();
        assert_eq!(spec.survivability.failure_kind, FailureKind::Weibull);
        assert_eq!(spec.survivability.weibull.wearout_shape, 2.5);
        assert_eq!(spec.survivability.weibull.infant_scale_years, 300.0);

        apply_param(&mut spec, "network.with_outages", &TomlValue::Bool(true)).unwrap();
        assert!(spec.network.with_outages);
        assert!(apply_param(&mut spec, "network.with_outages", &TomlValue::Int(1)).is_err());

        apply_param(&mut spec, "network.percolation", &TomlValue::Bool(true)).unwrap();
        apply_param(&mut spec, "network.percolation_steps", &TomlValue::Int(16)).unwrap();
        apply_param(&mut spec, "network.percolation_gap", &TomlValue::Float(0.2)).unwrap();
        assert!(spec.network.percolation);
        assert_eq!(spec.network.percolation_steps, 16);
        assert_eq!(spec.network.percolation_gap, 0.2);
        assert!(apply_param(&mut spec, "network.percolation", &TomlValue::Int(1)).is_err());
    }

    #[test]
    fn optimized_attack_paths() {
        use ssplane_lsn::optimizer::AttackObjective;
        let mut spec = ScenarioSpec::named("x");
        apply_param(&mut spec, "attack.kind", &TomlValue::Str("optimized".into())).unwrap();
        apply_param(&mut spec, "attack.objective", &TomlValue::Str("load-inflation".into()))
            .unwrap();
        apply_param(&mut spec, "attack.unit", &TomlValue::Str("sats".into())).unwrap();
        apply_param(&mut spec, "attack.budget", &TomlValue::Int(12)).unwrap();
        apply_param(&mut spec, "attack.restarts", &TomlValue::Int(4)).unwrap();
        apply_param(&mut spec, "attack.swaps", &TomlValue::Int(9)).unwrap();
        apply_param(&mut spec, "attack.damage_threshold", &TomlValue::Float(0.4)).unwrap();
        assert_eq!(spec.attack.kind, AttackKind::Optimized);
        assert_eq!(spec.attack.objective, AttackObjective::LoadInflation);
        assert_eq!(spec.attack.unit, AttackUnit::Sats);
        assert_eq!(spec.attack.budget, 12);
        assert_eq!(spec.attack.restarts, 4);
        assert_eq!(spec.attack.swaps, 9);
        assert_eq!(spec.attack.damage_threshold, 0.4);
        assert!(
            apply_param(&mut spec, "attack.objective", &TomlValue::Str("chaos".into())).is_err()
        );
        assert!(apply_param(&mut spec, "attack.budget", &TomlValue::Float(1.5)).is_err());
    }

    #[test]
    fn traffic_paths() {
        let mut spec = ScenarioSpec::named("x");
        apply_param(&mut spec, "traffic.model", &TomlValue::Str("gravity".into())).unwrap();
        apply_param(&mut spec, "traffic.pairs", &TomlValue::Int(150_000)).unwrap();
        apply_param(&mut spec, "traffic.sites", &TomlValue::Int(128)).unwrap();
        apply_param(&mut spec, "traffic.capacity_gbps", &TomlValue::Float(2.5)).unwrap();
        apply_param(&mut spec, "traffic.k_paths", &TomlValue::Int(4)).unwrap();
        assert_eq!(spec.traffic.model, TrafficModel::Gravity);
        assert_eq!(spec.traffic.pairs, 150_000);
        assert_eq!(spec.traffic.sites, 128);
        assert_eq!(spec.traffic.capacity_gbps, 2.5);
        assert_eq!(spec.traffic.k_paths, 4);
        assert!(apply_param(&mut spec, "traffic.model", &TomlValue::Str("psychic".into())).is_err());
        assert!(apply_param(&mut spec, "traffic.k_paths", &TomlValue::Float(1.5)).is_err());
        // The served-demand objective token reaches the attack spec.
        apply_param(&mut spec, "attack.objective", &TomlValue::Str("served-demand".into()))
            .unwrap();
        assert_eq!(spec.attack.objective, ssplane_lsn::optimizer::AttackObjective::ServedDemand);
    }

    #[test]
    fn spares_paths_update_the_policy() {
        let mut spec = ScenarioSpec::named("x");
        apply_param(&mut spec, "spares.policy", &TomlValue::Str("shared-pool".into())).unwrap();
        apply_param(&mut spec, "spares.count", &TomlValue::Int(40)).unwrap();
        apply_param(&mut spec, "spares.replacement_days", &TomlValue::Float(20.0)).unwrap();
        assert_eq!(
            spec.survivability.policy,
            SparePolicy::SharedPool { pool_size: 40, replacement_days: 20.0 }
        );
    }
}
