//! A minimal TOML-subset parser for scenario files.
//!
//! The build environment has no crates.io access, so instead of the real
//! `toml` crate the engine parses the subset its config format needs:
//!
//! * `key = value` pairs with bare or quoted keys;
//! * `[section]` headers (one level; the scenario schema is flat);
//! * strings (`"..."` with `\"`, `\\`, `\n`, `\t` escapes), booleans,
//!   integers, floats (including exponent notation), and single-line
//!   arrays of these;
//! * `#` comments and blank lines.
//!
//! Anything outside the subset is a hard [`ScenarioError::Parse`] — a
//! config that silently half-parses would be worse than no parser.

use crate::error::{Result, ScenarioError};
use std::collections::BTreeMap;

/// A parsed TOML value.
#[derive(Debug, Clone, PartialEq)]
pub enum TomlValue {
    /// A quoted string.
    Str(String),
    /// An integer literal.
    Int(i64),
    /// A float literal.
    Float(f64),
    /// `true` / `false`.
    Bool(bool),
    /// A homogeneous or mixed single-line array.
    Array(Vec<TomlValue>),
}

impl TomlValue {
    /// The value as an `f64` (integers widen).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            TomlValue::Float(x) => Some(*x),
            TomlValue::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// The value as a `u64` (rejects negatives and floats).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            TomlValue::Int(i) if *i >= 0 => Some(*i as u64),
            _ => None,
        }
    }

    /// The value as a `usize`.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().map(|u| u as usize)
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            TomlValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            TomlValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[TomlValue]> {
        match self {
            TomlValue::Array(items) => Some(items),
            _ => None,
        }
    }
}

/// One section's key/value pairs, in **declaration order** — sweep axes
/// derive their grid nesting from the order the file declares them, so
/// the parser must not sort keys.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Section {
    pairs: Vec<(String, TomlValue)>,
}

impl Section {
    /// Looks a key up.
    pub fn get(&self, key: &str) -> Option<&TomlValue> {
        self.pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// The pairs in declaration order.
    pub fn iter(&self) -> impl Iterator<Item = &(String, TomlValue)> {
        self.pairs.iter()
    }

    /// Appends a pair; `false` if the key is already present.
    fn insert(&mut self, key: String, value: TomlValue) -> bool {
        if self.get(&key).is_some() {
            return false;
        }
        self.pairs.push((key, value));
        true
    }
}

impl std::ops::Index<&str> for Section {
    type Output = TomlValue;
    fn index(&self, key: &str) -> &TomlValue {
        self.get(key).unwrap_or_else(|| panic!("no key '{key}' in section"))
    }
}

/// A parsed document: section name → ordered pairs. Top-level keys live
/// under the empty section name `""`.
pub type TomlDoc = BTreeMap<String, Section>;

/// Parses `source` into a [`TomlDoc`].
///
/// # Errors
/// [`ScenarioError::Parse`] with a 1-based line number on the first
/// offence.
pub fn parse(source: &str) -> Result<TomlDoc> {
    let mut doc: TomlDoc = BTreeMap::new();
    let mut section = String::new();
    doc.entry(section.clone()).or_default();

    for (idx, raw) in source.lines().enumerate() {
        let lineno = idx + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('[') {
            let name = rest.strip_suffix(']').ok_or_else(|| ScenarioError::Parse {
                line: lineno,
                message: "unterminated section header".to_string(),
            })?;
            let name = name.trim();
            if name.is_empty() || name.starts_with('[') {
                return Err(ScenarioError::Parse {
                    line: lineno,
                    message: "empty or nested section header (arrays of tables are not supported)"
                        .to_string(),
                });
            }
            section = name.to_string();
            doc.entry(section.clone()).or_default();
            continue;
        }
        let eq = find_unquoted(line, '=').ok_or_else(|| ScenarioError::Parse {
            line: lineno,
            message: "expected 'key = value'".to_string(),
        })?;
        let key = parse_key(line[..eq].trim(), lineno)?;
        let value = parse_value(line[eq + 1..].trim(), lineno)?;
        let entry = doc.entry(section.clone()).or_default();
        if !entry.insert(key.clone(), value) {
            return Err(ScenarioError::Parse {
                line: lineno,
                message: format!("duplicate key '{key}'"),
            });
        }
    }
    Ok(doc)
}

/// Strips a `#` comment, respecting quoted strings.
fn strip_comment(line: &str) -> &str {
    match find_unquoted(line, '#') {
        Some(i) => &line[..i],
        None => line,
    }
}

/// Finds the first `needle` outside double quotes.
fn find_unquoted(line: &str, needle: char) -> Option<usize> {
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_str => escaped = true,
            '"' => in_str = !in_str,
            c if c == needle && !in_str => return Some(i),
            _ => {}
        }
    }
    None
}

/// Parses a bare or quoted key.
fn parse_key(text: &str, lineno: usize) -> Result<String> {
    if let Some(stripped) = text.strip_prefix('"') {
        let inner = stripped.strip_suffix('"').ok_or_else(|| ScenarioError::Parse {
            line: lineno,
            message: "unterminated quoted key".to_string(),
        })?;
        return Ok(inner.to_string());
    }
    if text.is_empty()
        || !text.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-' || c == '.')
    {
        return Err(ScenarioError::Parse {
            line: lineno,
            message: format!("invalid bare key '{text}'"),
        });
    }
    Ok(text.to_string())
}

/// Parses one scalar or single-line array value.
fn parse_value(text: &str, lineno: usize) -> Result<TomlValue> {
    if text.is_empty() {
        return Err(ScenarioError::Parse { line: lineno, message: "missing value".to_string() });
    }
    if let Some(inner) = text.strip_prefix('[') {
        let inner = inner.strip_suffix(']').ok_or_else(|| ScenarioError::Parse {
            line: lineno,
            message: "unterminated array (arrays must be single-line)".to_string(),
        })?;
        let pieces = split_array_items(inner);
        let mut items = Vec::new();
        for (k, piece) in pieces.iter().enumerate() {
            let piece = piece.trim();
            if piece.is_empty() {
                // Only a single trailing empty piece is legal TOML (a
                // trailing comma, or the empty array `[]`); `[1,,2]` and
                // `[,]` must not silently half-parse.
                if k + 1 == pieces.len() && (k == 0 || !items.is_empty()) {
                    continue;
                }
                return Err(ScenarioError::Parse {
                    line: lineno,
                    message: "empty array element (stray comma?)".to_string(),
                });
            }
            items.push(parse_value(piece, lineno)?);
        }
        return Ok(TomlValue::Array(items));
    }
    if let Some(stripped) = text.strip_prefix('"') {
        let inner = stripped.strip_suffix('"').ok_or_else(|| ScenarioError::Parse {
            line: lineno,
            message: "unterminated string".to_string(),
        })?;
        return Ok(TomlValue::Str(unescape(inner, lineno)?));
    }
    match text {
        "true" => return Ok(TomlValue::Bool(true)),
        "false" => return Ok(TomlValue::Bool(false)),
        _ => {}
    }
    // TOML permits underscores in numbers.
    let numeric: String = text.chars().filter(|&c| c != '_').collect();
    if !numeric.contains(['.', 'e', 'E']) {
        if let Ok(i) = numeric.parse::<i64>() {
            return Ok(TomlValue::Int(i));
        }
    }
    if let Ok(x) = numeric.parse::<f64>() {
        if x.is_finite() {
            return Ok(TomlValue::Float(x));
        }
    }
    Err(ScenarioError::Parse { line: lineno, message: format!("cannot parse value '{text}'") })
}

/// Splits array innards on top-level commas (no nested arrays in the
/// schema, but quoted strings may contain commas).
fn split_array_items(inner: &str) -> Vec<&str> {
    let mut items = Vec::new();
    let mut start = 0;
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in inner.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_str => escaped = true,
            '"' => in_str = !in_str,
            ',' if !in_str => {
                items.push(&inner[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    items.push(&inner[start..]);
    items
}

/// Resolves the string escapes the subset supports.
fn unescape(s: &str, lineno: usize) -> Result<String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('"') => out.push('"'),
            Some('\\') => out.push('\\'),
            Some('n') => out.push('\n'),
            Some('t') => out.push('\t'),
            Some('r') => out.push('\r'),
            other => {
                return Err(ScenarioError::Parse {
                    line: lineno,
                    message: format!("unsupported escape '\\{}'", other.unwrap_or(' ')),
                })
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_scenario_shape() {
        let doc = parse(
            r##"
# top level
name = "solar max" # trailing comment
seed = 7

[demand]
total_demand_b = 2.5e2
lat_bins = 36

[sweep]
"demand.total_demand_b" = [10.0, 100, 1_000.0]
"spares.count" = [1, 3]
flag = true
"##,
        )
        .unwrap();
        assert_eq!(doc[""]["name"], TomlValue::Str("solar max".to_string()));
        assert_eq!(doc[""]["seed"], TomlValue::Int(7));
        assert_eq!(doc["demand"]["total_demand_b"], TomlValue::Float(250.0));
        assert_eq!(doc["demand"]["lat_bins"].as_usize(), Some(36));
        let axis = doc["sweep"]["demand.total_demand_b"].as_array().unwrap();
        assert_eq!(axis.len(), 3);
        assert_eq!(axis[1].as_f64(), Some(100.0));
        assert_eq!(axis[2].as_f64(), Some(1000.0));
        assert_eq!(doc["sweep"]["flag"].as_bool(), Some(true));
    }

    #[test]
    fn rejects_malformed_lines() {
        for (src, needle) in [
            ("[unclosed", "unterminated section"),
            ("key", "expected 'key = value'"),
            ("key = ", "missing value"),
            ("key = \"open", "unterminated string"),
            ("key = [1, 2", "unterminated array"),
            ("k ey = 1", "invalid bare key"),
            ("key = nope", "cannot parse value"),
            ("key = 1\nkey = 2", "duplicate key"),
            ("[[tables]]", "nested section"),
            ("key = [2,,6]", "empty array element"),
            ("key = [,]", "empty array element"),
            ("key = [,1]", "empty array element"),
        ] {
            let err = parse(src).unwrap_err();
            let text = err.to_string();
            assert!(text.contains(needle), "source {src:?} gave: {text}");
        }
    }

    #[test]
    fn trailing_comma_and_empty_array_are_legal() {
        let doc = parse("a = [1, 2,]\nb = []\n").unwrap();
        assert_eq!(doc[""]["a"].as_array().unwrap().len(), 2);
        assert_eq!(doc[""]["b"].as_array().unwrap().len(), 0);
    }

    #[test]
    fn strings_with_specials() {
        let doc = parse(r#"k = "a # not comment, \"quoted\", comma""#).unwrap();
        assert_eq!(doc[""]["k"].as_str(), Some(r#"a # not comment, "quoted", comma"#));
    }
}
