//! The engine's reproducibility contract, pinned end to end:
//!
//! 1. running the same `SweepSpec` twice produces **byte-identical**
//!    JSON-lines output;
//! 2. so does running it under different thread counts;
//! 3. per-scenario seeds are stable under sweep-axis reordering.

use proptest::prelude::*;
use ssplane_scenario::runner::{execute_scenario, Runner};
use ssplane_scenario::spec::ScenarioSpec;
use ssplane_scenario::sweep::{SweepAxis, SweepSpec};
use ssplane_scenario::toml::TomlValue;

/// A cheap but full-pipeline sweep: tiny demand, coarse fluence step,
/// short horizon — every stochastic stage (demand synthesis, fluence
/// sampling, survivability) still runs.
fn test_sweep() -> SweepSpec {
    let mut base = ScenarioSpec::named("determinism");
    base.demand.total_demand_b = 4.0;
    base.demand.lat_bins = 18;
    base.demand.tod_bins = 12;
    base.radiation.phases = 1;
    base.radiation.step_s = 600.0;
    base.survivability.horizon_years = 2.0;
    SweepSpec {
        base,
        axes: vec![
            SweepAxis {
                param: "demand.total_demand_b".to_string(),
                values: vec![TomlValue::Float(3.0), TomlValue::Float(7.0)],
            },
            SweepAxis {
                param: "spares.count".to_string(),
                values: vec![TomlValue::Int(1), TomlValue::Int(4)],
            },
        ],
    }
}

#[test]
fn same_sweep_twice_is_byte_identical() {
    let sweep = test_sweep();
    let a = Runner::with_threads(2).run_sweep(&sweep).unwrap().to_jsonl();
    let b = Runner::with_threads(2).run_sweep(&sweep).unwrap().to_jsonl();
    assert!(!a.is_empty());
    assert_eq!(a.lines().count(), 4);
    assert_eq!(a.as_bytes(), b.as_bytes());
}

#[test]
fn thread_count_does_not_change_the_bytes() {
    let sweep = test_sweep();
    let serial = Runner::with_threads(1).run_sweep(&sweep).unwrap().to_jsonl();
    for threads in [2, 4, 7] {
        let parallel = Runner::with_threads(threads).run_sweep(&sweep).unwrap().to_jsonl();
        assert_eq!(
            serial.as_bytes(),
            parallel.as_bytes(),
            "thread count {threads} changed the output"
        );
    }
}

#[test]
fn seeds_and_reports_stable_under_axis_reordering() {
    let forward = test_sweep();
    let reversed = SweepSpec {
        base: forward.base.clone(),
        axes: vec![forward.axes[1].clone(), forward.axes[0].clone()],
    };

    // Same parameter points, same seeds — independent of grid order.
    let mut seeds_fwd: Vec<(String, u64)> =
        forward.expand().unwrap().into_iter().map(|s| (s.name.clone(), s.seed)).collect();
    let mut seeds_rev: Vec<(String, u64)> =
        reversed.expand().unwrap().into_iter().map(|s| (s.name.clone(), s.seed)).collect();
    seeds_fwd.sort();
    seeds_rev.sort();
    assert_eq!(seeds_fwd, seeds_rev);

    // And therefore the same reports, line for line once sorted by name
    // (enumeration order legitimately differs).
    let runner = Runner::with_threads(3);
    let mut lines_fwd: Vec<String> =
        runner.run_sweep(&forward).unwrap().to_jsonl().lines().map(str::to_string).collect();
    let mut lines_rev: Vec<String> =
        runner.run_sweep(&reversed).unwrap().to_jsonl().lines().map(str::to_string).collect();
    lines_fwd.sort();
    lines_rev.sort();
    assert_eq!(lines_fwd, lines_rev);
}

#[test]
fn distinct_points_get_distinct_seeds() {
    let specs = test_sweep().expand().unwrap();
    let mut seeds: Vec<u64> = specs.iter().map(|s| s.seed).collect();
    seeds.sort_unstable();
    seeds.dedup();
    assert_eq!(seeds.len(), specs.len(), "seed collision across grid points");
}

/// A cheap design-only scenario over every registry family (the catalog
/// designer is scaled down so the full 5-system permutation stays cheap).
fn all_kinds_spec(kinds: Vec<&'static str>) -> ScenarioSpec {
    let mut spec = ScenarioSpec::named("kinds-order");
    spec.demand.total_demand_b = 4.0;
    spec.demand.lat_bins = 18;
    spec.demand.tod_bins = 12;
    spec.radiation.enabled = false;
    spec.survivability.enabled = false;
    spec.design.starlink_scale = 0.1;
    spec.design.kinds = kinds;
    spec
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The redesign's ordering contract as a property: however a spec
    /// permutes (or duplicates) `design.kinds`, the report bytes are
    /// those of the canonical registry order.
    #[test]
    fn kinds_ordering_never_changes_report_bytes(perm in 0usize..120, dup in 0usize..6) {
        let canonical = vec!["ss", "wd", "rgt", "slim", "starlink"];
        let reference = execute_scenario(&all_kinds_spec(canonical.clone()))
            .expect("canonical run succeeds")
            .to_json_line();

        // The `perm`-th permutation of the registry, Lehmer-decoded.
        let mut pool = canonical.clone();
        let mut shuffled = Vec::with_capacity(5);
        let mut code = perm;
        for radix in (1..=pool.len()).rev() {
            shuffled.push(pool.remove(code % radix));
            code /= radix;
        }
        if dup < shuffled.len() {
            let extra = shuffled[dup];
            shuffled.push(extra);
        }

        let line = execute_scenario(&all_kinds_spec(shuffled.clone()))
            .expect("permuted run succeeds")
            .to_json_line();
        prop_assert_eq!(&line, &reference, "kinds {:?} changed the bytes", shuffled);
    }
}
