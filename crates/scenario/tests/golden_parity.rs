//! Bit-parity pins for the `Designer` redesign: the seven scenarios that
//! shipped *before* the registry pipeline existed must keep producing
//! byte-identical JSON-lines through it.
//!
//! The fixtures under `tests/golden/` were captured from the
//! pre-refactor engine (fixed `ss_groups`/`wd_groups` paths, SS-only
//! networking); the generic design → attack → fluence → survivability →
//! network pipeline is required to reproduce them exactly — every float,
//! every field, every byte.

use ssplane_scenario::library;
use ssplane_scenario::runner::Runner;

/// The pre-refactor scenario set and its pinned output.
const GOLDEN: &[(&str, &str)] = &[
    ("baseline", include_str!("golden/baseline.jsonl")),
    ("paper-grid", include_str!("golden/paper-grid.jsonl")),
    ("solar-sweep", include_str!("golden/solar-sweep.jsonl")),
    ("plane-attack", include_str!("golden/plane-attack.jsonl")),
    ("spare-budget", include_str!("golden/spare-budget.jsonl")),
    ("mega-constellation", include_str!("golden/mega-constellation.jsonl")),
    ("routing", include_str!("golden/routing.jsonl")),
];

#[test]
fn pre_refactor_scenarios_reproduce_their_pinned_bytes() {
    let runner = Runner::default();
    for (name, golden) in GOLDEN {
        let builtin = library::find(name).expect("pinned scenario still shipped");
        let sweep = library::sweep(builtin).expect("pinned scenario parses");
        let outcome = runner.run_sweep(&sweep).expect("pinned scenario expands");
        assert_eq!(outcome.ok_count(), outcome.reports.len(), "{name}: a point failed");
        let jsonl = outcome.to_jsonl();
        // Compare line by line first for a readable failure, then the
        // full byte string (which also catches line-count drift).
        for (i, (got, want)) in jsonl.lines().zip(golden.lines()).enumerate() {
            assert_eq!(got, want, "{name} line {i} diverged from its pre-refactor pin");
        }
        assert_eq!(jsonl, *golden, "{name} diverged from its pre-refactor pin");
    }
}
