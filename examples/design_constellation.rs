//! Full design sweep (the paper's Fig. 9 scenario): SS-plane vs
//! multi-shell Walker-delta satellite counts across total-demand levels,
//! as CSV on stdout.
//!
//! ```sh
//! cargo run --release --example design_constellation
//! ```

use ssplane_core::designer::{design_ss_constellation, DesignConfig};
use ssplane_core::walker_baseline::{design_walker_constellation, WalkerBaselineConfig};
use ssplane_demand::grid::LatTodGrid;
use ssplane_demand::DemandModel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = DemandModel::synthetic_default()?;
    let grid = LatTodGrid::from_model(&model, 36, 24)?;
    let grid_total = grid.total();

    println!("total_demand_B,ss_planes,ss_sats,wd_shells,wd_sats,wd_over_ss");
    for &b in &[10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1000.0, 2000.0] {
        let demand = grid.scaled(b / grid_total);
        let ss = design_ss_constellation(&demand, DesignConfig::default())?;
        let wd = design_walker_constellation(&demand, WalkerBaselineConfig::default())?;
        println!(
            "{b},{},{},{},{},{:.2}",
            ss.planes.len(),
            ss.total_sats(),
            wd.shells.len(),
            wd.total_sats(),
            wd.total_sats() as f64 / ss.total_sats().max(1) as f64
        );
    }
    Ok(())
}
