//! Quickstart: design a small SS-plane constellation against the
//! synthetic spatiotemporal demand model and print what you got.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use ssplane_core::designer::{design_ss_constellation, DesignConfig};
use ssplane_demand::grid::LatTodGrid;
use ssplane_demand::DemandModel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Build the spatiotemporal demand model (synthetic SEDAC population
    //    x CESNET-like diurnal seasonality) and reduce it to the
    //    sun-relative (latitude x local-time-of-day) grid.
    let model = DemandModel::synthetic_default()?;
    let grid = LatTodGrid::from_model(&model, 36, 24)?;

    // 2. Scale to a total demand of 100 satellite-capacities.
    let demand = grid.scaled(100.0 / grid.total());

    // 3. Run the paper's greedy SS-plane cover.
    let constellation = design_ss_constellation(&demand, DesignConfig::default())?;

    println!("SS-plane constellation for total demand B = 100:");
    println!("  planes:           {}", constellation.planes.len());
    println!("  sats per plane:   {}", constellation.sats_per_plane);
    println!("  total satellites: {}", constellation.total_sats());
    println!(
        "  inclination:      {:.2} deg (sun-synchronous, retrograde)",
        constellation.inclination().map(|i| i.to_degrees()).unwrap_or(f64::NAN)
    );
    println!("  swath half-angle: {:.2} deg", constellation.swath_half_angle.to_degrees());
    println!("  LTANs of the first planes:");
    for p in constellation.planes.iter().take(8) {
        println!(
            "    LTAN {:5.2} h  (descending node at {:5.2} h)",
            p.orbit.ltan_h,
            p.orbit.ltdn_h()
        );
    }
    Ok(())
}
