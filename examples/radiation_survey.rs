//! Radiation survey: daily fluence across orbit inclinations (Fig. 7
//! scenario) plus spot fluxes at the South Atlantic Anomaly and the
//! outer-belt horns (Fig. 6 scenario).
//!
//! ```sh
//! cargo run --release --example radiation_survey
//! ```

use ssplane_astro::geo::GeoPoint;
use ssplane_astro::kepler::OrbitalElements;
use ssplane_astro::sunsync::sun_synchronous_inclination;
use ssplane_astro::time::Epoch;
use ssplane_radiation::fluence::daily_fluence;
use ssplane_radiation::{RadiationEnvironment, Species};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let env = RadiationEnvironment::default();
    let epoch = Epoch::from_calendar(2013, 6, 1, 0, 0, 0.0);

    println!("# Spot fluxes at 560 km (electrons, protons) [#/cm^2/s/MeV]");
    for (name, lat, lon) in [
        ("South Atlantic Anomaly", -26.0, -50.0),
        ("Outer-belt horn (N)", 60.0, 0.0),
        ("Outer-belt horn (S)", -70.0, 0.0),
        ("Equatorial Pacific", 0.0, 170.0),
    ] {
        let p = GeoPoint::from_degrees(lat, lon);
        let e = env.flux_at(Species::Electron, p, 560.0, epoch)?;
        let pr = env.flux_at(Species::Proton, p, 560.0, epoch)?;
        println!("{name:24}  e = {e:10.3e}   p = {pr:10.3e}");
    }

    println!("\n# Daily fluence vs inclination at 560 km [#/cm^2/MeV/day]");
    println!("{:>12} {:>14} {:>14}", "incl_deg", "electrons", "protons");
    let sso = sun_synchronous_inclination(560.0)?.to_degrees();
    for inc in [30.0, 45.0, 53.0, 60.0, 65.0, 70.0, 80.0, 90.0, sso] {
        let el = OrbitalElements::circular(560.0, inc.to_radians(), 0.0, 0.0)?;
        let f = daily_fluence(&env, &el, epoch, 30.0)?;
        let tag = if (inc - sso).abs() < 1e-9 { " (SSO)" } else { "" };
        println!("{:>12.2} {:>14.3e} {:>14.3e}{tag}", inc, f.electron, f.proton);
    }
    Ok(())
}
