//! Repeat-ground-track explorer (the paper's §2.2 / Fig. 1 scenario):
//! enumerate LEO RGTs, their coverage cost, and the Walker-delta
//! comparison at each altitude.
//!
//! ```sh
//! cargo run --release --example rgt_explorer
//! ```

use ssplane_astro::coverage::{coverage_half_angle, size_walker_delta};
use ssplane_core::rgt_analysis::{analyze_rgt, fig1_data};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let inclination = 65f64.to_radians();
    let elevation = ssplane_astro::coverage::DEFAULT_MIN_ELEVATION_DEG;

    println!("# LEO repeat ground tracks at 65 deg, 500-2000 km, repeat cycles up to 4 days");
    println!(
        "{:>10} {:>8} {:>12} {:>12} {:>10}",
        "revs:days", "alt_km", "RGT_sats", "Walker_sats", "uniform?"
    );
    let data = fig1_data(500.0, 2000.0, 4, inclination, elevation, 100.0)?;
    for r in &data.rgts {
        let theta = coverage_half_angle(r.orbit.altitude_km, elevation.to_radians())?;
        let walker = size_walker_delta(theta, inclination)?.total();
        println!(
            "{:>10} {:>8.0} {:>12} {:>12} {:>10}",
            format!("{}:{}", r.orbit.revs, r.orbit.days),
            r.orbit.altitude_km,
            r.sats_required,
            walker,
            if r.effectively_uniform { "yes" } else { "NO" }
        );
    }

    // The paper's Fig. 2 anchor orbit in detail.
    let detail = analyze_rgt(ssplane_astro::rgt::rgt_orbit(15, 1, inclination)?, elevation)?;
    println!(
        "\n15:1 RGT detail: altitude {:.1} km, track length {:.1} rad, \
         perpendicular pass gap {:.2} deg, {} satellites for continuous coverage",
        detail.orbit.altitude_km,
        detail.orbit.ground_track_length(),
        detail.orbit.perpendicular_pass_spacing().to_degrees(),
        detail.sats_required
    );
    Ok(())
}
