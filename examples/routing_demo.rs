//! Time-aware routing over a designed SS-plane constellation (the
//! paper's §5(1) agenda): build the +grid ISL topology, route a
//! trans-Atlantic flow across time slots, and report delays and handoffs.
//!
//! ```sh
//! cargo run --release --example routing_demo
//! ```

use ssplane_astro::geo::GeoPoint;
use ssplane_core::designer::{design_ss_constellation, DesignConfig};
use ssplane_demand::grid::LatTodGrid;
use ssplane_demand::DemandModel;
use ssplane_lsn::routing::{great_circle_delay_ms, route_over_time};
use ssplane_lsn::snapshot::{time_grid, SnapshotSeries};
use ssplane_lsn::topology::{Constellation, GridTopologyConfig, Topology};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Design a constellation for a moderate demand level.
    let model = DemandModel::synthetic_default()?;
    let grid = LatTodGrid::from_model(&model, 36, 24)?;
    let demand = grid.scaled(60.0 / grid.total());
    let design = design_ss_constellation(&demand, DesignConfig::default())?;
    let epoch = ssplane_astro::time::Epoch::from_calendar(2013, 6, 1, 0, 0, 0.0);

    let constellation = Constellation::from_ss(epoch, &design)?;
    // Propagate the whole horizon once into the shared snapshot cache;
    // every downstream stage reads positions from it.
    let series = SnapshotSeries::build_parallel(&constellation, &time_grid(epoch, 12, 300.0), 0)?;
    let topology = Topology::plus_grid(&series.snapshot(0), GridTopologyConfig::default())?;
    println!(
        "constellation: {} planes x {} sats = {} satellites",
        design.planes.len(),
        design.sats_per_plane,
        design.total_sats()
    );
    println!(
        "topology: {} ISLs, mean degree {:.2}, connected = {}",
        topology.links.len(),
        topology.mean_degree(),
        topology.is_connected()
    );

    let src = GeoPoint::from_degrees(40.7, -74.0); // New York
    let dst = GeoPoint::from_degrees(51.5, -0.1); // London
    let fiber = great_circle_delay_ms(src, dst);
    println!("\nNew York -> London (great-circle fiber bound {fiber:.1} ms):");

    let routes =
        route_over_time(&series, src, dst, 20f64.to_radians(), GridTopologyConfig::default())?;
    for (k, route) in routes.routes.iter().enumerate() {
        match route {
            Some(r) => println!(
                "  slot {k:2}: {:2} hops, {:6.1} ms ({:.2}x fiber)",
                r.hops.len(),
                r.delay_ms,
                r.delay_ms / fiber
            ),
            None => println!("  slot {k:2}: unreachable (coverage gap at this local time)"),
        }
    }
    println!(
        "\nreachable slots: {}/{}, handoffs: {}, mean delay {:.1} ms",
        routes.reachable_slots(),
        routes.routes.len(),
        routes.handoffs(),
        routes.mean_delay_ms()
    );
    Ok(())
}
