//! Drive the scenario engine from code: load a built-in sweep, run it in
//! parallel, and consume the typed reports (the `scenario-runner` binary
//! is the CLI version of exactly this).
//!
//! ```sh
//! cargo run --release --example scenario_sweep
//! ```

use ssplane_scenario::library;
use ssplane_scenario::runner::Runner;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let builtin = library::find("solar-sweep").expect("shipped builtin");
    let sweep = library::sweep(builtin)?;
    println!("running '{}' ({} points) on all cores...\n", builtin.name, sweep.len());

    let outcome = Runner::default().run_sweep(&sweep)?;
    for report in outcome.reports.iter().filter_map(|r| r.as_ref().ok()) {
        let ss = report.system("ss").expect("both systems designed");
        let wd = report.system("wd").expect("both systems designed");
        let (ssf, wdf) = (
            ss.fluence.as_ref().expect("radiation stage on"),
            wd.fluence.as_ref().expect("radiation stage on"),
        );
        println!(
            "{:<60} SS {:>5} sats  WD {:>5} sats  proton saving {:>5.1}%",
            report.name,
            ss.design.sats,
            wd.design.sats,
            100.0 * (1.0 - ssf.median_proton / wdf.median_proton),
        );
    }

    // The same data as machine-readable JSON-lines:
    let jsonl = outcome.to_jsonl();
    println!("\nfirst JSONL record:\n{}", jsonl.lines().next().unwrap_or(""));
    Ok(())
}
