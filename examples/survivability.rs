//! Survivability comparison (the paper's §5(2) agenda): the same spare
//! policy applied to an SS constellation and a 65° Walker workhorse, under
//! radiation-driven failures.
//!
//! ```sh
//! cargo run --release --example survivability
//! ```

use ssplane_astro::kepler::OrbitalElements;
use ssplane_astro::sunsync::sun_synchronous_inclination;
use ssplane_astro::time::Epoch;
use ssplane_lsn::failures::FailureModel;
use ssplane_lsn::spares::{expected_failures_per_plane, spares_for_availability, SparePolicy};
use ssplane_lsn::survivability::{compare, SurvivabilityConfig};
use ssplane_radiation::fluence::daily_fluence;
use ssplane_radiation::RadiationEnvironment;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let env = RadiationEnvironment::default();
    let epoch = Epoch::from_calendar(2013, 6, 1, 0, 0, 0.0);
    let model = FailureModel::default();

    let dose_at = |inc_deg: f64| -> Result<_, Box<dyn std::error::Error>> {
        let el = OrbitalElements::circular(560.0, inc_deg.to_radians(), 0.0, 0.0)?;
        Ok(daily_fluence(&env, &el, epoch, 60.0)?)
    };
    let sso_inc = sun_synchronous_inclination(560.0)?.to_degrees();
    let ss_dose = dose_at(sso_inc)?;
    let wd_dose = dose_at(65.0)?;

    println!(
        "daily dose   SS({sso_inc:.2} deg): e {:.3e}  p {:.3e}",
        ss_dose.electron, ss_dose.proton
    );
    println!("daily dose   WD(65 deg):    e {:.3e}  p {:.3e}", wd_dose.electron, wd_dose.proton);
    println!(
        "annual hazard: SS {:.3}/yr  WD {:.3}/yr",
        model.hazard_per_year(ss_dose),
        model.hazard_per_year(wd_dose)
    );

    // Spares for a 1% per-resupply-period exhaustion probability.
    let sats_per_plane = 25;
    for (name, dose) in [("SS", ss_dose), ("WD", wd_dose)] {
        let lambda =
            expected_failures_per_plane(sats_per_plane, model.hazard_per_year(dose), 180.0);
        let spares = spares_for_availability(lambda, 0.01)?;
        println!("{name}: expected failures/plane/resupply = {lambda:.2} -> {spares} spares/plane");
    }

    // Full event simulation, 20 planes x 25 sats, 3 spares each.
    let policy = SparePolicy::PerPlane { spares_per_plane: 3, replacement_days: 3.0 };
    let (ss, wd) = compare(
        &vec![ss_dose; 20],
        &vec![wd_dose; 20],
        sats_per_plane,
        &model,
        &policy,
        SurvivabilityConfig { horizon_years: 7.0, ..Default::default() },
    )?;
    println!("\n7-year simulation, 20 planes x 25 sats, 3 hot spares/plane:");
    println!(
        "  SS: availability {:.4}, failures {}, spares consumed {}",
        ss.availability, ss.failures, ss.spares_consumed
    );
    println!(
        "  WD: availability {:.4}, failures {}, spares consumed {}",
        wd.availability, wd.failures, wd.spares_consumed
    );
    Ok(())
}
