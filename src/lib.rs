//! # ssplane
//!
//! Umbrella crate for the `ss-plane` workspace — a reproduction of
//! *"Sustainability or Survivability? Eliminating the Need to Choose in
//! LEO Satellite Constellations"* (HotNets 2025) grown into an
//! experiment platform.
//!
//! Re-exports every member crate so downstream code (and the workspace's
//! own integration tests and examples) can reach the full pipeline from
//! one dependency:
//!
//! * [`astro`] — orbital mechanics (time, Kepler, J2, frames, coverage);
//! * [`demand`] — the synthetic spatiotemporal demand model;
//! * [`radiation`] — the trapped-radiation environment;
//! * [`core`] — SS-plane designer, Walker baseline, evaluation;
//! * [`lsn`] — ISL topologies, routing, traffic, failures, survivability;
//! * [`bench`](mod@bench) — figure regeneration;
//! * [`scenario`] — the config-driven, parallel scenario-sweep engine.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use ssplane_astro as astro;
pub use ssplane_bench as bench;
pub use ssplane_core as core;
pub use ssplane_demand as demand;
pub use ssplane_lsn as lsn;
pub use ssplane_radiation as radiation;
pub use ssplane_scenario as scenario;
