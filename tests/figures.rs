//! Shape assertions for every reproduced figure — the executable version
//! of EXPERIMENTS.md's paper-vs-measured checklist. Each test runs the
//! figure pipeline at reduced resolution and asserts the *qualitative*
//! claims the paper makes about that figure.

use ssplane_bench::figures::*;
use ssplane_radiation::Species;

#[test]
fn fig1_rgt_worse_than_walker_and_three_nonuniform() {
    let d = fig1::data(fig1::Params { walker_step_km: 250.0, ..Default::default() }).unwrap();
    // Claim 1: exactly three LEO RGTs do not give uniform coverage.
    assert_eq!(d.non_uniform().count(), 3);
    // Claim 2: every RGT costs more than Walker at its altitude.
    for r in &d.rgts {
        let w = d
            .walker
            .iter()
            .min_by(|a, b| {
                (a.altitude_km - r.orbit.altitude_km)
                    .abs()
                    .partial_cmp(&(b.altitude_km - r.orbit.altitude_km).abs())
                    .unwrap()
            })
            .unwrap();
        assert!(r.sats_required > w.sats_required);
    }
    // Claim 3 (anchors): the 13:1 RGT needs ~350 satellites vs ~200 for
    // Walker near 1215 km (paper: ≥356 vs ≥200).
    let rgt13 = d.rgts.iter().find(|r| r.orbit.revs == 13 && r.orbit.days == 1).unwrap();
    assert!((280..=430).contains(&rgt13.sats_required), "{}", rgt13.sats_required);
}

#[test]
fn fig2_track_closes_and_covers_partially() {
    let d = fig2::data(fig2::Params { step_s: 60.0, ..Default::default() }).unwrap();
    assert!((450.0..650.0).contains(&d.altitude_km));
    // Closed track: first and last samples nearly coincide.
    let first = d.track_deg.first().unwrap();
    let last = d.track_deg.last().unwrap();
    assert!((first.0 - last.0).abs() < 2.0, "lat closure");
    // Single-satellite swath covers a band, not the globe.
    assert!(d.covered_fraction < 0.95);
}

#[test]
fn fig3_population_clusters_at_intermediate_north() {
    let d = fig3::data();
    let peak = d.iter().cloned().fold((0.0, 0.0), |a, b| if b.1 > a.1 { b } else { a });
    assert!((10.0..45.0).contains(&peak.0));
    assert!(peak.1 > 4000.0);
    // Northern hemisphere mass exceeds southern.
    let north: f64 = d.iter().filter(|(l, _)| *l > 0.0).map(|(_, v)| v).sum();
    let south: f64 = d.iter().filter(|(l, _)| *l < 0.0).map(|(_, v)| v).sum();
    assert!(north > 2.0 * south);
}

#[test]
fn fig4_diurnal_percentiles() {
    let d = fig4::data(fig4::Params { n_sites: 80, n_days: 90, bins: 24, seed: 7 });
    let med_peak = d.median_percent.iter().cloned().fold(0.0, f64::max);
    let med_trough = d.median_percent.iter().cloned().fold(f64::INFINITY, f64::min);
    // Paper's Fig. 4: median swings from well below to well above 100%.
    assert!(med_trough < 80.0 && med_peak > 150.0);
    // p95 curve sits far above the median (heavy-tailed sites).
    let p95_peak = d.p95_percent.iter().cloned().fold(0.0, f64::max);
    assert!(p95_peak > 3.0 * med_peak);
    // Trough in the small hours (bins 2-6), peak in waking hours.
    let trough_idx =
        (0..24).min_by(|&a, &b| d.median_percent[a].partial_cmp(&d.median_percent[b]).unwrap());
    assert!((1..=7).contains(&trough_idx.unwrap()));
}

#[test]
fn fig5_sun_relative_stationarity() {
    let d =
        fig5::data(fig5::Params { rings: 9, sectors: 24, hours: [0.0, 6.0, 12.0, 18.0] }).unwrap();
    assert_eq!(d.len(), 4);
    // Day sectors outshine night sectors when summed across all four
    // snapshots (each sector has seen 4 different longitudes).
    let mut day = 0.0;
    let mut night = 0.0;
    for (_, grid) in &d {
        for ring in grid {
            for (s, &v) in ring.iter().enumerate() {
                let h = 24.0 * (s as f64 + 0.5) / 24.0;
                if (9.0..18.0).contains(&h) {
                    day += v;
                } else if !(5.0..22.0).contains(&h) {
                    night += v;
                }
            }
        }
    }
    assert!(day > 1.5 * night, "day {day} night {night}");
}

#[test]
fn fig6_saa_and_horn_structure() {
    let d = fig6::data(fig6::Params { n_days: 16, n_lat: 19, n_lon: 36, ..Default::default() })
        .unwrap();
    let (peak_lat, peak_lon, peak) = d.peak();
    assert!(peak > 0.0);
    // The electron maximum is in the SAA quadrant or the horn bands.
    let in_saa = peak_lat < 0.0 && peak_lon < 0.0;
    let in_horns = peak_lat.abs() > 50.0;
    assert!(in_saa || in_horns, "peak at ({peak_lat}, {peak_lon})");
    // Proton map: SAA-confined.
    let p = fig6::data(fig6::Params {
        species: Species::Proton,
        n_days: 8,
        n_lat: 19,
        n_lon: 36,
        ..Default::default()
    })
    .unwrap();
    let (plat, plon, _) = p.peak();
    assert!(plat < 10.0 && plat > -60.0 && plon < 30.0, "proton peak ({plat}, {plon})");
}

#[test]
fn fig7_inclination_worst_case() {
    let d = fig7::data(fig7::Params {
        inclinations_deg: vec![50.0, 60.0, 65.0, 70.0, 75.0, 80.0, 90.0, 97.64],
        step_s: 60.0,
        ..Default::default()
    })
    .unwrap();
    let electron: Vec<f64> = d.iter().map(|(_, f)| f.electron).collect();
    // Peak at moderate inclination (60-75°), as the paper argues.
    let peak_idx = (0..electron.len())
        .max_by(|&a, &b| electron[a].partial_cmp(&electron[b]).unwrap())
        .unwrap();
    let peak_inc = d[peak_idx].0;
    assert!((57.5..=77.5).contains(&peak_inc), "electron peak at {peak_inc}");
    // SSO (97.64°) sees less than the peak by ~10-35% (paper: ~23%).
    let sso = electron.last().unwrap();
    let saving = 1.0 - sso / electron[peak_idx];
    assert!((0.05..0.5).contains(&saving), "saving {saving:.2}");
    // Electron decades match the paper's axis (10⁹-10¹⁰ range).
    assert!(electron[peak_idx] > 1e9 && electron[peak_idx] < 1e11);
    // Protons: monotone decline over 50-97° (SAA dwell shrinks).
    let protons: Vec<f64> = d.iter().map(|(_, f)| f.proton).collect();
    assert!(protons[0] > *protons.last().unwrap());
    assert!(protons[0] > 1e6 && protons[0] < 1e9);
}

#[test]
fn fig8_demand_grid_structure() {
    let g = fig8::data();
    let (i, j) = g.argmax().unwrap();
    assert!((5.0..50.0).contains(&g.lat_center_deg(i)));
    assert!((10.0..22.0).contains(&g.tod_center_h(j)));
    // Night columns quiet; polar rows empty.
    let col = |j: usize| (0..g.lat_bins()).map(|i| g.value(i, j)).sum::<f64>();
    assert!(col(14) > 3.0 * col(3));
}

#[test]
fn fig9_ss_beats_wd_and_gap_narrows() {
    let d = fig9::data(fig9::Params { totals: vec![10.0, 200.0, 2000.0], ..Default::default() })
        .unwrap();
    for p in &d {
        assert!(
            p.row.ss_sats < p.row.wd_sats,
            "B={}: SS {} >= WD {}",
            p.total_demand,
            p.row.ss_sats,
            p.row.wd_sats
        );
    }
    // Both series monotone.
    for w in d.windows(2) {
        assert!(w[1].row.ss_sats >= w[0].row.ss_sats);
        assert!(w[1].row.wd_sats >= w[0].row.wd_sats);
    }
    // Gap narrows as demand saturates the grid (paper's takeaway).
    let ratio = |p: &fig9::Fig9Point| p.row.wd_sats as f64 / p.row.ss_sats as f64;
    assert!(
        ratio(&d[0]) > ratio(&d[2]),
        "low-B ratio {:.2} should exceed high-B ratio {:.2}",
        ratio(&d[0]),
        ratio(&d[2])
    );
    // Low-B advantage is multiple-fold (paper: up to an order of
    // magnitude; our reproduction: ≥3x at the floor).
    assert!(ratio(&d[0]) >= 3.0, "low-B ratio {:.2}", ratio(&d[0]));
}

#[test]
fn fig10_radiation_savings() {
    let d = fig10::data(fig10::Params {
        totals: vec![50.0, 500.0],
        phases: 1,
        step_s: 120.0,
        ..Default::default()
    })
    .unwrap();
    for r in &d {
        // SS's median proton fluence beats WD's (the SAA-dodging effect).
        assert!(r.ss.proton < r.wd.proton);
    }
    // SS median electron fluence stays flat across demand levels (all
    // planes share one inclination), within integration noise.
    let e0 = d[0].ss.electron;
    let e1 = d[1].ss.electron;
    assert!((e0 - e1).abs() / e0 < 0.25, "SS electron drift {e0:e} -> {e1:e}");
}

#[test]
fn ablations_table_generates() {
    let rows = ablations::data().unwrap();
    assert!(rows.iter().any(|r| r.knob == "branch_rule"));
    assert!(rows.iter().any(|r| r.knob == "wd_supply_model"));
}
