//! Cross-crate integration tests: the full pipeline from synthetic demand
//! and radiation models through constellation design, empirical
//! verification, networking, and survivability.

use ssplane_bench::figures::{default_demand_model, default_grid, design_epoch};
use ssplane_core::designer::{design_ss_constellation, DesignConfig};
use ssplane_core::evaluate::{verify_earth_fixed_supply, verify_sun_relative_supply};
use ssplane_core::walker_baseline::{design_walker_constellation, WalkerBaselineConfig};
use ssplane_lsn::failures::FailureModel;
use ssplane_lsn::routing::route_over_time;
use ssplane_lsn::snapshot::{time_grid, SnapshotSeries};
use ssplane_lsn::spares::{spares_for_availability, SparePolicy};
use ssplane_lsn::survivability::{compare, SurvivabilityConfig};
use ssplane_lsn::topology::{Constellation, GridTopologyConfig, Topology};
use ssplane_radiation::fluence::daily_fluence;
use ssplane_radiation::RadiationEnvironment;

/// The realistic demand grid scaled to a total-demand level.
fn demand_at(total_b: f64) -> ssplane_demand::grid::LatTodGrid {
    let model = default_demand_model();
    let grid = default_grid(&model);
    grid.scaled(total_b / grid.total())
}

#[test]
fn ss_design_on_realistic_demand_beats_walker() {
    // The paper's headline comparison at a mid-range demand level.
    let demand = demand_at(200.0);
    let ss = design_ss_constellation(&demand, DesignConfig::default()).unwrap();
    let wd = design_walker_constellation(&demand, WalkerBaselineConfig::default()).unwrap();
    assert!(ss.total_sats() > 0);
    assert!(
        2 * ss.total_sats() <= wd.total_sats(),
        "SS {} should be at most half of WD {}",
        ss.total_sats(),
        wd.total_sats()
    );
    assert_eq!(ss.unserved_demand, 0.0, "realistic demand must be fully servable");
}

#[test]
fn ss_design_verified_by_propagation() {
    // Design against the grid model, then *verify by propagating the
    // actual satellites* and counting coverage of demanded cells.
    let demand = demand_at(60.0);
    let ss = design_ss_constellation(&demand, DesignConfig::default()).unwrap();
    let epoch = design_epoch();
    let sats = ss.satellites(epoch).unwrap();
    let report = verify_sun_relative_supply(
        &sats,
        &demand,
        epoch,
        6,
        ss.config.altitude_km,
        ss.config.min_elevation_deg,
    )
    .unwrap();
    assert!(report.cells_checked > 100);
    assert!(
        report.satisfied_fraction() > 0.85,
        "satisfied {:.3} worst shortfall {:.2}",
        report.satisfied_fraction(),
        report.worst_shortfall
    );
    assert!(report.mean_supply_ratio > 1.0);
}

#[test]
fn walker_design_verified_on_average() {
    let demand = demand_at(60.0);
    let wd = design_walker_constellation(&demand, WalkerBaselineConfig::default()).unwrap();
    let epoch = design_epoch();
    let sats = wd.satellites().unwrap();
    let report = verify_earth_fixed_supply(
        &sats,
        &demand,
        epoch,
        4,
        6,
        wd.config.altitude_km,
        wd.config.min_elevation_deg,
    )
    .unwrap();
    assert!(report.cells_checked > 10);
    assert!(report.mean_supply_ratio > 0.9, "ratio {:.3}", report.mean_supply_ratio);
}

#[test]
fn sso_radiation_advantage_end_to_end() {
    // Radiation chain: the designed SS constellation's inclination sees
    // less daily fluence than the 65° Walker workhorse.
    let env = RadiationEnvironment::default();
    let epoch = design_epoch();
    let demand = demand_at(50.0);
    let ss = design_ss_constellation(&demand, DesignConfig::default()).unwrap();
    let inc = ss.inclination().unwrap();
    let ss_el = ssplane_astro::kepler::OrbitalElements::circular(560.0, inc, 0.0, 0.0).unwrap();
    let wd_el =
        ssplane_astro::kepler::OrbitalElements::circular(560.0, 65f64.to_radians(), 0.0, 0.0)
            .unwrap();
    let f_ss = daily_fluence(&env, &ss_el, epoch, 60.0).unwrap();
    let f_wd = daily_fluence(&env, &wd_el, epoch, 60.0).unwrap();
    assert!(f_ss.electron < f_wd.electron, "{:e} vs {:e}", f_ss.electron, f_wd.electron);
    assert!(f_ss.proton < f_wd.proton);
    // The headline "~23% less": our reproduction lands in 10-35%.
    let saving = 1.0 - f_ss.electron / f_wd.electron;
    assert!((0.05..0.5).contains(&saving), "electron saving {saving:.2}");
}

#[test]
fn routing_works_on_designed_constellation() {
    let demand = demand_at(40.0);
    let ss = design_ss_constellation(&demand, DesignConfig::default()).unwrap();
    let epoch = design_epoch();
    let constellation = Constellation::from_ss(epoch, &ss).unwrap();
    assert_eq!(constellation.total_sats(), ss.total_sats());
    // One shared propagation cache feeds topology and routing.
    let series = SnapshotSeries::build(&constellation, &time_grid(epoch, 5, 120.0)).unwrap();
    let topo = Topology::plus_grid(&series.snapshot(0), GridTopologyConfig::default()).unwrap();
    assert!(topo.mean_degree() > 2.0);

    // Route between two populated places over 5 slots.
    let src = ssplane_astro::geo::GeoPoint::from_degrees(40.7, -74.0); // NYC
    let dst = ssplane_astro::geo::GeoPoint::from_degrees(51.5, -0.1); // London
    let routes =
        route_over_time(&series, src, dst, 20f64.to_radians(), GridTopologyConfig::default())
            .unwrap();
    // A design sized for demand coverage should route trans-Atlantic
    // traffic in at least some slots.
    assert!(routes.reachable_slots() >= 1, "no reachable slot out of {}", routes.routes.len());
    if routes.reachable_slots() > 0 {
        assert!(routes.mean_delay_ms() > 18.0, "faster than light?");
        assert!(routes.mean_delay_ms() < 500.0);
    }
}

#[test]
fn survivability_ss_needs_fewer_spares() {
    // §5(2): same availability target, fewer spares for the
    // lower-radiation constellation.
    let env = RadiationEnvironment::default();
    let epoch = design_epoch();
    let model = FailureModel::default();

    let dose = |inc_deg: f64| {
        let el =
            ssplane_astro::kepler::OrbitalElements::circular(560.0, inc_deg.to_radians(), 0.0, 0.0)
                .unwrap();
        daily_fluence(&env, &el, epoch, 120.0).unwrap()
    };
    let ss_dose = dose(97.64);
    let wd_dose = dose(65.0);

    // Spares to keep exhaustion probability < 1% per resupply period.
    let per_plane = 25;
    let ss_expected = ssplane_lsn::spares::expected_failures_per_plane(
        per_plane,
        model.hazard_per_year(ss_dose),
        180.0,
    );
    let wd_expected = ssplane_lsn::spares::expected_failures_per_plane(
        per_plane,
        model.hazard_per_year(wd_dose),
        180.0,
    );
    let ss_spares = spares_for_availability(ss_expected, 0.01).unwrap();
    let wd_spares = spares_for_availability(wd_expected, 0.01).unwrap();
    assert!(ss_spares <= wd_spares, "ss {ss_spares} vs wd {wd_spares}");

    // And the event simulation agrees on fewer failures / better
    // availability.
    let policy = SparePolicy::PerPlane { spares_per_plane: 3, replacement_days: 3.0 };
    let (ss_rep, wd_rep) = compare(
        &[ss_dose; 12],
        &[wd_dose; 12],
        per_plane,
        &model,
        &policy,
        SurvivabilityConfig { horizon_years: 6.0, ..Default::default() },
    )
    .unwrap();
    assert!(ss_rep.failures < wd_rep.failures);
    assert!(ss_rep.availability >= wd_rep.availability);
}
